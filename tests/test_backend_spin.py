"""Tests for the Promela (SPIN) backend — structural checks on the
generated specification (§5.2); SPIN itself is not available offline."""

import pytest

from repro.lang.program import frontend
from repro.backends.spin import generate_promela

SRC = """
type sendT = record of { dest: int, vAddr: int, size: int}
type userT = union of { send: sendT, update: int }
const TABLE_SIZE = 4;
channel userC: userT
channel tableC: record of { ret: int, v: int }
external interface user(out userC) {
    Send({ send |> { $d, $v, $s }}),
    Update({ update |> $u })
};
process pageTable {
    $table: #array of int = #{ TABLE_SIZE -> 0, ... };
    while (true) {
        alt {
            case( in( tableC, { $ret, $v })) { table[v % TABLE_SIZE] = ret; }
            case( in( userC, { update |> $u })) { print(u); }
        }
    }
}
process sm1 {
    while (true) {
        in( userC, { send |> { $d, $v, $s }});
        out( tableC, { @, v });
    }
}
"""


@pytest.fixture(scope="module")
def spec():
    return generate_promela(frontend(SRC))


def test_rendezvous_channels(spec):
    assert "chan userC = [0] of" in spec
    assert "chan tableC = [0] of" in spec


def test_object_pools_with_bounded_ids(spec):
    # Bounded objectId tables double as leak detectors (§5.2).
    assert "#define MAX_sendT" in spec
    assert "sendT_rc[" in spec
    assert "objectId exhaustion = leak" in spec


def test_liveness_assertions_before_access(spec):
    assert "live check" in spec
    assert "double free" in spec


def test_refcount_inline_operations(spec):
    assert "inline sendT_link(id)" in spec
    assert "inline sendT_unlink(id)" in spec


def test_processes_become_proctypes(spec):
    assert "active proctype pageTable()" in spec
    assert "active proctype sm1()" in spec


def test_union_dispatch_uses_eval(spec):
    # SPIN's rendezvous matching implements ESP dispatch: the union tag
    # becomes an eval() receive argument.
    assert "eval(0)" in spec or "eval(1)" in spec


def test_pid_constraint_becomes_eval(spec):
    # `{ @, v }` sends pid 1; nothing receives with eval here, but the
    # send side must carry the literal pid.
    assert "tableC ! 1, v_1" in spec


def test_consts_become_defines(spec):
    assert "#define TABLE_SIZE 4" in spec


def test_interface_macros_for_test_spin(spec):
    assert "inline user_Send(d, v, s)" in spec
    assert "inline user_Update(u)" in spec
    # The Send macro allocates the record and sends the objectId.
    assert "sendT_alloc" in spec


def test_alt_becomes_if_with_channel_guards(spec):
    assert ":: atomic {" in spec
    assert "fi;" in spec


def test_hidden_temps_do_not_inflate_state(spec):
    assert "hidden int" in spec


def test_multiple_instances_mode():
    spec2 = generate_promela(frontend(SRC), instances=2)
    assert "#define INST 2" in spec2
    assert "chan userC[INST]" in spec2 or "chan userC" in spec2
    assert "proctype pageTable(int iid)" in spec2
    assert "init {" in spec2
    assert "run pageTable(i);" in spec2


def test_translation_is_pre_optimization():
    # §5.2: translation happens right after type checking, so the spec
    # reflects source structure — the dead variable must still appear.
    src = """
channel c: int
process p { $dead = 41; out( c, dead + 1); }
process q { in( c, $x); print(x); }
"""
    spec = generate_promela(frontend(src))
    assert "dead_0" in spec


def test_link_unlink_translate():
    src = """
type dataT = array of int
channel c: dataT
process p { $d: dataT = { 2 -> 0 }; out( c, d); unlink( d); }
process q { in( c, $x); link( x); unlink( x); unlink( x); }
"""
    spec = generate_promela(frontend(src))
    assert "_unlink(" in spec
    assert "_link(" in spec


def test_assert_statement_translates():
    src = """
channel c: int
process p { $x = 1; assert(x > 0); out( c, x); }
process q { in( c, $y); print(y); }
"""
    spec = generate_promela(frontend(src))
    assert "assert((x_0 > 0));" in spec


def test_array_fill_emits_loop():
    spec = generate_promela(frontend(SRC))
    assert ".len = TABLE_SIZE;" in spec
