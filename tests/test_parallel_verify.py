"""Differential tests for the parallel verification engine.

The contract under test: :class:`ParallelExplorer` is a drop-in
replacement for the serial :class:`Explorer` whose *results* — state
count, transition count, verdict, and rendered violations — do not
depend on the worker count, the backend (forked processes vs. inline),
or the run.  The property test feeds both engines randomly generated
well-typed programs; the directed tests pin down the retransmission
model, the CLI output, and the edge cases (caps, invariants, initial
violations).
"""

from __future__ import annotations

import re

import pytest
from hypothesis import given, settings

from repro import compile_source
from repro.runtime.machine import Machine
from repro.verify.explorer import Explorer
from repro.verify.parallel import ParallelExplorer
from repro.vmmc.retransmission import buggy_source, build_machine
from tests.strategies import esp_programs


def _serial(source: str, **kw) -> object:
    return Explorer(Machine(compile_source(source)), **kw).explore()


def _parallel(source: str, jobs: int, **kw) -> object:
    return ParallelExplorer(
        Machine(compile_source(source)), jobs=jobs, **kw
    ).explore()


def _stats(result) -> tuple:
    return (result.states, result.transitions, len(result.violations),
            result.ok, result.complete)


def _rendered(result) -> str:
    return "\n".join(str(v) for v in result.violations)


# -- the property: parallel == serial on random programs -----------------------


@settings(max_examples=10, deadline=None)
@given(esp_programs())
def test_parallel_matches_serial_on_random_programs(source):
    # Full exploration (no early stop, no caps) is where the engines
    # must agree exactly: same reachable set, same transition count,
    # same violation multiset.  quiescence_ok=False turns the generated
    # over-waiting consumers into detectable deadlocks.
    serial = _serial(source, quiescence_ok=False, stop_at_first=False)
    for jobs in (1, 2, 4):
        par = _parallel(source, jobs, quiescence_ok=False,
                        stop_at_first=False)
        assert _stats(par) == _stats(serial), source
        assert sorted((v.kind, v.message) for v in par.violations) == \
            sorted((v.kind, v.message) for v in serial.violations), source


# -- directed determinism checks ----------------------------------------------


BUGGY = buggy_source("duplicate_delivery", window=1, messages=2)


def test_violations_identical_across_jobs_and_backends():
    runs = [
        ParallelExplorer(build_machine(BUGGY), jobs=jobs,
                         use_processes=procs).explore()
        for jobs, procs in [(1, False), (2, False), (4, False),
                            (2, True), (4, True)]
    ]
    baseline = runs[0]
    assert not baseline.ok
    for other in runs[1:]:
        assert _stats(other) == _stats(baseline)
        assert _rendered(other) == _rendered(baseline)


def test_run_to_run_determinism_with_processes():
    first = ParallelExplorer(build_machine(BUGGY), jobs=2,
                             use_processes=True).explore()
    second = ParallelExplorer(build_machine(BUGGY), jobs=2,
                              use_processes=True).explore()
    assert _stats(first) == _stats(second)
    assert _rendered(first) == _rendered(second)


def test_full_exploration_matches_serial_counts():
    serial = Explorer(build_machine(BUGGY), stop_at_first=False).explore()
    par = ParallelExplorer(build_machine(BUGGY), jobs=3,
                           stop_at_first=False).explore()
    assert (par.states, par.transitions) == (serial.states, serial.transitions)
    assert len(par.violations) == len(serial.violations)


def test_parallel_counterexample_replays_like_serial():
    # The BFS engine reconstructs traces by replay; every rendered step
    # must use the same human-readable move descriptions the serial
    # explorer records directly.
    par = ParallelExplorer(build_machine(BUGGY), jobs=2).explore()
    serial = Explorer(build_machine(BUGGY)).explore()
    assert par.violations and serial.violations
    serial_steps = set(serial.violations[0].trace)
    # BFS finds a shortest counterexample; its steps are drawn from the
    # same move-description vocabulary.
    assert par.violations[0].trace
    assert all(isinstance(step, str) and "->" in step
               for step in par.violations[0].trace)
    assert par.violations[0].depth == len(par.violations[0].trace)
    assert serial_steps  # serial produced a real trace too


# -- CLI byte-identity ---------------------------------------------------------


def _cli_verify(capsys, path: str, jobs: int) -> tuple[int, str]:
    from repro.tools.cli import main

    code = main(["verify", path, "--jobs", str(jobs)])
    out = capsys.readouterr().out
    # The elapsed-seconds field is the only thing allowed to differ.
    return code, re.sub(r"\d+\.\d+s", "TIMEs", out)


def test_cli_output_identical_for_any_jobs(capsys, tmp_path):
    target = tmp_path / "buggy.esp"
    target.write_text(BUGGY)
    code1, out1 = _cli_verify(capsys, str(target), jobs=1)
    code4, out4 = _cli_verify(capsys, str(target), jobs=4)
    assert code1 == code4 == 1  # violation found
    assert "violation" in out1
    assert out1 == out4


def test_cli_clean_program_identical_for_any_jobs(capsys):
    path = "examples/esp/retransmission.esp"
    code1, out1 = _cli_verify(capsys, path, jobs=1)
    code4, out4 = _cli_verify(capsys, path, jobs=4)
    assert code1 == code4 == 0
    assert out1 == out4


# -- edge cases ----------------------------------------------------------------


SMALL_OK = """
channel c: int

process prod {
    out( c, 1);
    out( c, 2);
}

process cons {
    in( c, $x);
    in( c, $y);
    assert( y == 2);
}
"""


def test_jobs_must_be_positive():
    machine = Machine(compile_source(SMALL_OK))
    with pytest.raises(ValueError):
        ParallelExplorer(machine, jobs=0)


def test_backend_selection():
    assert ParallelExplorer(Machine(compile_source(SMALL_OK)),
                            jobs=1).backend == "inline"
    assert ParallelExplorer(Machine(compile_source(SMALL_OK)),
                            jobs=2).backend == "processes"
    assert ParallelExplorer(Machine(compile_source(SMALL_OK)), jobs=2,
                            use_processes=False).backend == "inline"


def test_max_states_marks_incomplete():
    serial = _serial(SMALL_OK)
    par = _parallel(SMALL_OK, 2, max_states=1)
    assert par.states <= serial.states
    assert not par.complete


def test_max_depth_marks_incomplete():
    par = _parallel(SMALL_OK, 2, max_depth=1)
    assert not par.complete
    assert par.ok  # the truncated prefix is violation-free


def test_invariant_violations_match_serial():
    def never_two_done(machine):
        from repro.runtime.interp import Status

        done = sum(1 for ps in machine.processes
                   if ps.status is Status.DONE)
        if done >= 2:
            return "two processes finished"
        return None

    serial = Explorer(Machine(compile_source(SMALL_OK)),
                      invariants=[never_two_done],
                      stop_at_first=False).explore()
    for jobs, procs in [(1, False), (2, True)]:
        par = ParallelExplorer(Machine(compile_source(SMALL_OK)),
                               invariants=[never_two_done], jobs=jobs,
                               stop_at_first=False,
                               use_processes=procs).explore()
        assert _stats(par) == _stats(serial)
        assert sorted(v.message for v in par.violations) == \
            sorted(v.message for v in serial.violations)


def test_initial_state_violation_reported():
    source = """
channel c: int

process p {
    assert( 1 == 2);
    out( c, 0);
}

process q {
    in( c, $x);
}
"""
    par = _parallel(source, 2)
    assert not par.ok
    assert par.violations[0].kind == "assertion"
    assert par.violations[0].depth == 0


# -- reduction under the parallel engine ---------------------------------------
#
# ParallelExplorer takes the BFS-safe subset of the reduction layer
# (symmetry keyer + singleton chaining; no strict ample sets, which
# need the DFS cycle proviso).  The contract: reduced results are
# byte-identical for every jobs value and backend, the verdict and
# violation kinds agree with the *plain* serial explorer, and the
# reduced run never stores more states than its own plain run.

REDUCE_MODES = ("por", "sym", "por,sym")

# True symmetry replicas: three textually identical tickers (out-side
# only, so ESP's one-pattern-per-process rule allows them) and a
# counting consumer — the permuted ticker states collapse to one
# canonical representative.
REPLICA_TICKERS = """
channel tally: int
process t0 { out( tally, 1); out( tally, 1); }
process t1 { out( tally, 1); out( tally, 1); }
process t2 { out( tally, 1); out( tally, 1); }
process boss {
    $n = 0;
    while (n < 6) { in( tally, $d); n = n + d; }
}
"""


@pytest.mark.parametrize("mode", REDUCE_MODES)
def test_reduced_output_identical_across_jobs_and_backends(mode):
    runs = [
        ParallelExplorer(build_machine(BUGGY), jobs=jobs,
                         use_processes=procs, stop_at_first=False,
                         reduce=mode).explore()
        for jobs, procs in [(1, False), (2, False), (4, False),
                            (2, True), (4, True)]
    ]
    baseline = runs[0]
    assert not baseline.ok
    for run in runs[1:]:
        assert _stats(run) == _stats(baseline)
        assert _rendered(run) == _rendered(baseline)


@pytest.mark.parametrize("mode", REDUCE_MODES)
def test_reduced_parallel_verdict_matches_plain_serial(mode):
    for source in (BUGGY, REPLICA_TICKERS):
        machine = (build_machine(source) if source is BUGGY
                   else Machine(compile_source(source)))
        plain = Explorer(machine, quiescence_ok=False,
                         stop_at_first=False).explore()
        machine = (build_machine(source) if source is BUGGY
                   else Machine(compile_source(source)))
        reduced = ParallelExplorer(machine, jobs=2, quiescence_ok=False,
                                   stop_at_first=False, reduce=mode).explore()
        assert reduced.ok == plain.ok
        assert ({v.kind for v in reduced.violations}
                == {v.kind for v in plain.violations})
        assert reduced.states <= plain.states


def test_replica_sorting_shrinks_the_parallel_store():
    # The symmetry canonicalizer must actually merge the permuted
    # replica states, identically for every jobs value.
    plain = [
        _parallel(REPLICA_TICKERS, jobs, stop_at_first=False)
        for jobs in (1, 2, 4)
    ]
    reduced = [
        ParallelExplorer(Machine(compile_source(REPLICA_TICKERS)), jobs=jobs,
                         stop_at_first=False, reduce="sym").explore()
        for jobs in (1, 2, 4)
    ]
    assert len({_stats(r) for r in plain}) == 1
    assert len({_stats(r) for r in reduced}) == 1
    assert reduced[0].ok and plain[0].ok
    assert reduced[0].states < plain[0].states
    assert reduced[0].stats["reduction"]["sym_canon_changed"] > 0


@settings(max_examples=10, deadline=None)
@given(esp_programs())
def test_reduced_parallel_agrees_with_plain_on_random_programs(source):
    plain = _serial(source, quiescence_ok=False, stop_at_first=False)
    for jobs in (1, 2):
        par = ParallelExplorer(Machine(compile_source(source)), jobs=jobs,
                               quiescence_ok=False, stop_at_first=False,
                               reduce="por,sym").explore()
        assert par.ok == plain.ok, source
        assert ({v.kind for v in par.violations}
                == {v.kind for v in plain.violations}), source
