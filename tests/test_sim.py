"""Tests for the discrete-event device substrate."""

import pytest

from repro.sim import CostModel, DMAEngine, Simulator, Wire
from repro.sim.nic import NIC, FirmwareAction, FirmwareBase, FirmwareInput


# -- event engine ----------------------------------------------------------------


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(5.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(9.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 9.0


def test_equal_times_fire_in_scheduling_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(3.0, order.append, tag)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_run_until_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, 1)
    sim.run(until_us=5.0)
    assert not fired
    assert sim.now == 5.0
    sim.run()
    assert fired == [1]


def test_run_until_predicate():
    sim = Simulator()
    state = {"n": 0}

    def tick():
        state["n"] += 1
        if state["n"] < 10:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    assert sim.run_until(lambda: state["n"] >= 3)
    assert state["n"] == 3


def test_run_until_clamps_clock_when_queue_drains_before_deadline():
    # Regression: the drained-queue return path left ``now`` at the
    # last event's time instead of advancing to the ``until_us``
    # horizon the way run() does, so callers computing follow-up
    # deadlines from ``sim.now`` started from a stale clock.
    sim = Simulator()
    sim.schedule(50.0, lambda: None)
    assert sim.run_until(lambda: False, until_us=100.0) is False
    assert sim.now == 100.0
    # Also with an empty queue from the start.
    sim2 = Simulator()
    assert sim2.run_until(lambda: False, until_us=25.0) is False
    assert sim2.now == 25.0


def test_run_until_watchdog_fires_on_drain_not_one_event_late():
    # Regression: a time-dependent watchdog predicate must see the
    # deadline clock on the very call where the queue drains — the old
    # path evaluated it against the stale pre-deadline ``now`` and
    # reported failure, deferring the trip to a later call.
    sim = Simulator()
    sim.schedule(50.0, lambda: None)
    assert sim.run_until(lambda: sim.now >= 100.0, until_us=100.0) is True
    assert sim.now == 100.0


def test_nested_scheduling_from_events():
    sim = Simulator()
    hits = []
    sim.schedule(1.0, lambda: sim.schedule(1.0, hits.append, "inner"))
    sim.run()
    assert hits == ["inner"]
    assert sim.now == 2.0


# -- batched dispatch ------------------------------------------------------------


def test_dispatch_mode_validation():
    with pytest.raises(ValueError):
        Simulator(dispatch="warp")
    with pytest.raises(ValueError):
        Simulator(dispatch="batched", batch_events=0)


@pytest.mark.parametrize("batch", [1, 2, 3, 7, 64])
def test_batched_identical_timestamps_fire_in_fifo_order(batch):
    # Regression (ISSUE 10 satellite): events at identical timestamps
    # must fire in insertion order regardless of how the batch
    # boundaries fall inside the timestamp bucket.
    sim = Simulator(dispatch="batched", batch_events=batch)
    order = []
    for tag in range(10):
        sim.schedule(3.0, order.append, tag)
    for tag in range(10, 15):
        sim.schedule(5.0, order.append, tag)
    sim.run_until(lambda: len(order) >= 15)
    assert order == list(range(15))


@pytest.mark.parametrize("batch", [1, 2, 3, 7, 64])
def test_batched_run_until_stops_mid_bucket_and_resumes_in_order(batch):
    # Stopping inside a same-timestamp bucket must leave the remainder
    # pending (counted by pending()) and fire it in the original
    # insertion order on resume.
    sim = Simulator(dispatch="batched", batch_events=batch)
    order = []
    for tag in range(12):
        sim.schedule(4.0, order.append, tag)
    assert sim.run_until(lambda: len(order) >= 5)
    assert order == list(range(len(order)))  # a prefix, in order
    assert sim.pending() == 12 - len(order)
    sim.run()
    assert order == list(range(12))
    assert sim.pending() == 0


def test_batched_schedule_into_current_bucket_mid_batch():
    # An event handler scheduling at delay 0 appends to the in-flight
    # timestamp bucket; FIFO order must hold across the injection.
    sim = Simulator(dispatch="batched", batch_events=4)
    order = []

    def first():
        order.append("first")
        sim.schedule(0.0, order.append, "injected")

    sim.schedule(1.0, first)
    sim.schedule(1.0, order.append, "second")
    sim.run_until(lambda: len(order) >= 3)
    assert order == ["first", "second", "injected"]


def test_batched_event_order_matches_per_event():
    # The determinism contract: the two dispatch modes process the
    # exact same event sequence; only predicate observation differs.
    def workload(sim, log):
        def tick(n):
            log.append((sim.now, n))
            if n < 30:
                sim.schedule(1.0 + (n % 3), tick, n + 1)
                if n % 4 == 0:
                    sim.schedule(0.0, log.append, ("echo", n))

        sim.schedule(1.0, tick, 0)

    log_pe, log_b = [], []
    sim_pe = Simulator()
    workload(sim_pe, log_pe)
    sim_pe.run_until(lambda: False)
    sim_b = Simulator(dispatch="batched", batch_events=5)
    workload(sim_b, log_b)
    sim_b.run_until(lambda: False)
    assert log_pe == log_b
    assert sim_pe.events_processed == sim_b.events_processed


def test_batched_run_until_clamps_clock_when_queue_drains():
    # Parity with the per-event drained-queue clamp: an unsatisfied
    # predicate advances the clock to the horizon.
    sim = Simulator(dispatch="batched", batch_events=8)
    sim.schedule(50.0, lambda: None)
    assert sim.run_until(lambda: False, until_us=100.0) is False
    assert sim.now == 100.0


def test_batched_converged_run_keeps_event_clock():
    # A *satisfied* predicate must report the clock of the last event,
    # not the watchdog horizon (regression: the clamp ran before the
    # predicate check, so converged fabric runs reported the deadline
    # as their convergence time).
    sim = Simulator(dispatch="batched", batch_events=64)
    done = []
    sim.schedule(50.0, done.append, 1)
    assert sim.run_until(lambda: bool(done), until_us=100_000.0) is True
    assert sim.now == 50.0


def test_batched_watchdog_fires_on_drain():
    sim = Simulator(dispatch="batched", batch_events=8)
    sim.schedule(50.0, lambda: None)
    assert sim.run_until(lambda: sim.now >= 100.0, until_us=100.0) is True
    assert sim.now == 100.0


def test_batched_horizon_does_not_fire_future_events():
    sim = Simulator(dispatch="batched", batch_events=8)
    fired = []
    sim.schedule(10.0, fired.append, "early")
    sim.schedule(200.0, fired.append, "late")
    assert sim.run_until(lambda: False, until_us=100.0) is False
    assert fired == ["early"]
    assert sim.pending() == 1
    sim.run()
    assert fired == ["early", "late"]


def test_batched_max_events_budget():
    sim = Simulator(dispatch="batched", batch_events=4)

    def requeue():
        sim.schedule(1.0, requeue)

    sim.schedule(1.0, requeue)
    with pytest.raises(RuntimeError):
        sim.run_until(lambda: False, max_events=100)


def test_pending_counts_across_buckets():
    sim = Simulator()
    assert sim.pending() == 0
    for _ in range(3):
        sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 4
    sim.run()
    assert sim.pending() == 0


# -- DMA engines -------------------------------------------------------------------


def test_dma_transfer_time():
    cost = CostModel()
    sim = Simulator()
    dma = DMAEngine(sim, "d", startup_us=2.0, mb_s=100.0)
    done = []
    dma.start(1000, done.append, "x")
    assert dma.busy
    sim.run()
    assert done == ["x"]
    assert sim.now == pytest.approx(2.0 + 10.0)
    assert not dma.busy


def test_dma_transfers_serialize():
    sim = Simulator()
    dma = DMAEngine(sim, "d", startup_us=1.0, mb_s=100.0)
    times = []
    dma.start(100, lambda: times.append(sim.now))
    dma.start(100, lambda: times.append(sim.now))
    sim.run()
    assert times[0] == pytest.approx(2.0)
    assert times[1] == pytest.approx(4.0)


# -- wire ------------------------------------------------------------------------------


class _RecordingNIC:
    def __init__(self):
        self.packets = []

    def packet_arrived(self, packet):
        self.packets.append(packet)


def test_wire_delivers_to_other_side():
    sim = Simulator()
    cost = CostModel()
    wire = Wire(sim, cost)
    a, b = _RecordingNIC(), _RecordingNIC()
    wire.attach(0, a)
    wire.attach(1, b)
    wire.send(0, {"id": 1}, 160)
    sim.run()
    assert b.packets == [{"id": 1}]
    assert not a.packets
    assert sim.now == pytest.approx(160 / cost.wire_mb_s + cost.wire_latency_us)


def test_wire_directions_are_independent():
    sim = Simulator()
    wire = Wire(sim, CostModel())
    a, b = _RecordingNIC(), _RecordingNIC()
    wire.attach(0, a)
    wire.attach(1, b)
    wire.send(0, {"to": "b"}, 100)
    wire.send(1, {"to": "a"}, 100)
    sim.run()
    assert a.packets == [{"to": "a"}]
    assert b.packets == [{"to": "b"}]


# -- NIC CPU model -----------------------------------------------------------------------


class _EchoFirmware(FirmwareBase):
    """Consumes inputs, burns a fixed cycle budget, echoes actions."""

    def __init__(self, cycles_per_input=330.0):
        self.cycles_per_input = cycles_per_input
        self.seen = []

    def step(self, inputs):
        self.seen.extend(inputs)
        actions = []
        for inp in inputs:
            if inp.kind == "host_req":
                actions.append(FirmwareAction("notify", payload=inp.payload))
        return self.cycles_per_input * len(inputs), actions


def _nic_with_host():
    from repro.sim.host import Host

    sim = Simulator()
    cost = CostModel()
    fw = _EchoFirmware()
    nic = NIC(sim, cost, 0, fw)
    wire = Wire(sim, cost)
    wire.attach(0, nic)
    wire.attach(1, _RecordingNIC())
    nic.wire = wire
    host = Host(sim, cost, nic)
    return sim, cost, nic, host, fw


def test_nic_charges_cpu_time():
    sim, cost, nic, host, fw = _nic_with_host()
    host.post({"kind": "noop"})
    sim.run()
    # 330 cycles at 33 MHz = 10 µs of CPU plus post + notify latency.
    assert host.notifications == [{"kind": "noop"}]
    assert sim.now == pytest.approx(cost.host_post_us + 10.0 + cost.host_notify_us)
    assert nic.stats.quanta == 1


def test_nic_inputs_batch_while_cpu_busy():
    sim, cost, nic, host, fw = _nic_with_host()
    host.post({"n": 1})
    host.post({"n": 2})
    host.post({"n": 3})
    sim.run()
    # First quantum takes input 1 (and possibly 2/3 depending on PIO
    # arrival); everything is processed in <= 3 quanta.
    assert len(host.notifications) == 3
    assert nic.stats.quanta <= 3


def test_nic_recv_dma_precedes_firmware():
    sim, cost, nic, host, fw = _nic_with_host()
    nic.packet_arrived({"nbytes": 1600})
    sim.run()
    assert any(i.kind == "packet" for i in fw.seen)
    # The packet went through the receive DMA engine first.
    assert nic.dma_recv.transfers == 1
    assert nic.dma_recv.bytes_moved == 1600 + cost.packet_header_bytes


def test_cost_model_chunks():
    cost = CostModel()
    assert cost.chunks_of(4) == [4]
    assert cost.chunks_of(32) == [32]
    assert cost.chunks_of(33) == [33]
    assert cost.chunks_of(4096) == [4096]
    assert cost.chunks_of(4097) == [4096, 1]
    assert cost.chunks_of(65536) == [4096] * 16


def test_cost_model_conversions():
    cost = CostModel()
    assert cost.cycles_to_us(33.0) == pytest.approx(1.0)
    assert cost.host_dma_us(0) == pytest.approx(cost.host_dma_startup_us)
    assert cost.wire_time_us(160) == pytest.approx(cost.wire_latency_us + 1.0)


def test_sram_accounting_bounded_by_window():
    from repro.vmmc.workloads import build_pair

    pair = build_pair("orig")
    received = []
    pair.hosts[1].on_notify = received.append
    for _ in range(6):
        pair.hosts[0].send(1, 0, 8192)  # 2 chunks each
    pair.sim.run_until(lambda: len(received) >= 6, max_events=4_000_000)
    for nic in pair.nics:
        assert nic.stats.sram_peak_bytes > 0
        # Occupancy stays far below the 1 MB SRAM: the window bounds
        # in-flight data.
        assert nic.stats.sram_peak_bytes < nic.sram_bytes // 4
        assert nic.sram_used == 0  # everything drained


def test_sram_acquire_release_cycle():
    sim = Simulator()
    cost = CostModel()
    nic = NIC(sim, cost, 0, _EchoFirmware())
    nic.sram_acquire(1000)
    nic.sram_acquire(500)
    assert nic.stats.sram_peak_bytes == 1500
    nic.sram_release(1500)
    assert nic.sram_used == 0
