"""Cross-backend differential conformance suite for the execution
engines.

The compiled (closure-threaded) engine is the default; the AST walker
is the reference semantics.  This suite holds the two to *full
fidelity* — not just final answers but the complete observable
surface: print traces, instruction/context-switch/transfer counters,
refcount events (allocations, frees, links, unlinks), canonical final
states (PCs + locals + heap), runtime errors, deadlock verdicts, and
verifier state/transition counts.  Any divergence is a bug in the
compiled engine by definition.

Four legs:

* every program in ``examples/esp`` (execution + verification),
* random well-typed programs from :func:`tests.strategies.esp_programs`
  (``derandomize=True`` pins the corpus, so failures are reproducible
  and shrink to minimal programs),
* the same two corpora against the *loaded* native engine — the C
  backend compiled to a shared object and driven through the batched
  quantum protocol (``--engine native``),
* the C backend's semantics model: the generated firmware binary from
  ``test_differential`` must agree with every engine on the same
  input scripts (four-way agreement).

Debugging a divergence: re-run the failing program with
``--engine ast`` (or ``ESP_ENGINE=ast``) to confirm which side moved;
see docs/ENGINE.md.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CollectorReader,
    Machine,
    QueueWriter,
    Scheduler,
    compile_source,
    create_machine,
    create_scheduler,
)
from repro.backends.c import generate_c
from repro.backends.c.build import find_cc
from repro.errors import ESPError
from repro.runtime.machine import ENGINES
from repro.verify.environment import default_verification_bridges
from repro.verify.explorer import Explorer
from repro.verify.state import canonical_state
from tests.strategies import esp_programs
from tests.test_differential import GCC, HARNESS, PROGRAM, script_items

ESP_DIR = Path(__file__).resolve().parent.parent / "examples" / "esp"
EXAMPLES = sorted(p.name for p in ESP_DIR.glob("*.esp"))

# Per-example exploration caps: identical caps on both engines make a
# truncated exploration a valid differential (deterministic DFS visits
# the same prefix); vmmc is too large to exhaust in a unit test.
STATE_CAPS = {"vmmc.esp": 2_000}
TRANSFER_CAP = 2_000

assert EXAMPLES, "examples/esp corpus missing"

needs_cc = pytest.mark.skipif(find_cc() is None,
                              reason="no C compiler available")

# The native engine batches whole quanta inside the shared object, so
# it does not expose snapshot/restore (no verifier leg) or a canonical
# Python heap image (no final_state); everything else is held to exact
# agreement with the AST walker.  On error outcomes the run stops at a
# point mid-quantum where Python-side bookkeeping counters are not
# meaningful, so only the trace and the error itself are compared.
_NATIVE_KEYS = ("trace", "outcome", "statuses", "counters", "heap_events")
_NATIVE_ERROR_KEYS = ("trace", "outcome")


def _execution_fingerprint(source: str, engine: str, filename: str = "<diff>"):
    """Everything observable about one deterministic run.

    External channels get the default verification bridges (always-
    ready choice writers / sink readers), so examples with interfaces
    run unmodified; the stack policy picks moves deterministically, so
    both engines see the same schedule and must produce the same
    fingerprint.
    """
    program = compile_source(source, filename)
    trace: list[tuple[str, tuple]] = []
    machine = Machine(
        program,
        externals=default_verification_bridges(program),
        engine=engine,
        print_handler=lambda name, values: trace.append((name, tuple(values))),
    )
    try:
        result = Scheduler(machine).run(max_transfers=TRANSFER_CAP)
        outcome = (result.reason, result.transfers, result.instructions)
    except ESPError as err:
        outcome = ("error", type(err).__name__, str(err))
    c = machine.counters
    return {
        "trace": trace,
        "outcome": outcome,
        "statuses": tuple(ps.status.value for ps in machine.processes),
        "counters": (c.instructions, c.context_switches, c.transfers,
                     c.alt_blocks, c.matches, c.prints),
        "heap_events": machine.heap.counters.snapshot(),
        "final_state": canonical_state(machine),
    }


def _verification_fingerprint(source: str, engine: str, max_states=None,
                              filename: str = "<diff>"):
    """The verifier's complete verdict under one engine."""
    program = compile_source(source, filename)
    machine = Machine(
        program, externals=default_verification_bridges(program), engine=engine
    )
    kwargs = {} if max_states is None else {"max_states": max_states}
    result = Explorer(machine, quiescence_ok=False, stop_at_first=False,
                      **kwargs).explore()
    return {
        "verdict": (result.states, result.transitions, result.ok,
                    result.complete),
        "violations": sorted((v.kind, v.message) for v in result.violations),
    }


def _assert_same(fps: dict) -> None:
    """Compare per-engine fingerprints key by key for readable diffs."""
    baseline_engine = "ast"
    baseline = fps[baseline_engine]
    for engine, fp in fps.items():
        for key in baseline:
            assert fp[key] == baseline[key], (
                f"engine '{engine}' diverges from '{baseline_engine}' "
                f"on {key}: {fp[key]!r} != {baseline[key]!r}"
            )


# -- leg 1: the examples corpus ------------------------------------------------


@pytest.mark.parametrize("example", EXAMPLES)
def test_examples_execution_parity(example):
    source = (ESP_DIR / example).read_text()
    fps = {engine: _execution_fingerprint(source, engine, example)
           for engine in ENGINES}
    _assert_same(fps)


@pytest.mark.parametrize("example", EXAMPLES)
def test_examples_verifier_parity(example):
    source = (ESP_DIR / example).read_text()
    cap = STATE_CAPS.get(example)
    fps = {engine: _verification_fingerprint(source, engine, cap, example)
           for engine in ENGINES}
    _assert_same(fps)


# -- leg 2: random programs (pinned corpus, shrink-friendly) -------------------


@settings(max_examples=200, deadline=None, derandomize=True)
@given(esp_programs())
def test_random_programs_execution_parity(source):
    fps = {engine: _execution_fingerprint(source, engine)
           for engine in ENGINES}
    try:
        _assert_same(fps)
    except AssertionError as err:
        raise AssertionError(f"{err}\nprogram:\n{source}") from None


@settings(max_examples=200, deadline=None, derandomize=True)
@given(esp_programs())
def test_random_programs_verifier_parity(source):
    # Generated over-waiting consumers deadlock; quiescence_ok=False in
    # the fingerprint turns those into violations, so the deadlock
    # *verdict* (not just the state count) is part of the contract.
    fps = {engine: _verification_fingerprint(source, engine)
           for engine in ENGINES}
    try:
        _assert_same(fps)
    except AssertionError as err:
        raise AssertionError(f"{err}\nprogram:\n{source}") from None


# -- leg 3: the loaded native engine -------------------------------------------


def _native_fingerprint(source: str, filename: str = "<diff>"):
    """The native engine's observable surface for one deterministic run
    (same schedule as `_execution_fingerprint`, minus final_state)."""
    program = compile_source(source, filename)
    trace: list[tuple[str, tuple]] = []
    machine = create_machine(
        program,
        externals=default_verification_bridges(program),
        engine="native",
        print_handler=lambda name, values: trace.append((name, tuple(values))),
    )
    try:
        result = create_scheduler(machine).run(max_transfers=TRANSFER_CAP)
        outcome = (result.reason, result.transfers, result.instructions)
    except ESPError as err:
        outcome = ("error", type(err).__name__, str(err))
    c = machine.counters
    return {
        "trace": trace,
        "outcome": outcome,
        "statuses": tuple(ps.status.value for ps in machine.processes),
        "counters": (c.instructions, c.context_switches, c.transfers,
                     c.alt_blocks, c.matches, c.prints),
        "heap_events": machine.heap.counters.snapshot(),
    }


def _assert_native_matches_ast(source: str, filename: str = "<diff>"):
    ast = _execution_fingerprint(source, "ast", filename)
    native = _native_fingerprint(source, filename)
    keys = (_NATIVE_ERROR_KEYS if native["outcome"][0] == "error"
            else _NATIVE_KEYS)
    for key in keys:
        assert native[key] == ast[key], (
            f"native engine diverges from 'ast' on {key}: "
            f"{native[key]!r} != {ast[key]!r}"
        )


@needs_cc
@pytest.mark.parametrize("example", EXAMPLES)
def test_examples_native_parity(example):
    _assert_native_matches_ast((ESP_DIR / example).read_text(), example)


@needs_cc
@settings(max_examples=200, deadline=None, derandomize=True)
@given(esp_programs())
def test_random_programs_native_parity(source):
    try:
        _assert_native_matches_ast(source)
    except AssertionError as err:
        raise AssertionError(f"{err}\nprogram:\n{source}") from None


# -- leg 4: four-way agreement with the C backend ------------------------------


@pytest.fixture(scope="module")
def c_binary(tmp_path_factory):
    if GCC is None:
        pytest.skip("no C compiler available")
    tmp = tmp_path_factory.mktemp("engine_diff")
    (tmp / "pgm.c").write_text(generate_c(compile_source(PROGRAM)))
    (tmp / "harness.c").write_text(HARNESS)
    binary = tmp / "pgm"
    subprocess.run(
        [GCC, "-O1", "-o", str(binary), str(tmp / "pgm.c"),
         str(tmp / "harness.c")],
        check=True, capture_output=True, text=True,
    )
    return str(binary)


def _engine_outputs(script, engine):
    req = QueueWriter(["Compute", "Reset"])
    drain = CollectorReader(["D"])
    for item in script:
        if item[0] == "C":
            req.post("Compute", item[1], item[2])
        else:
            req.post("Reset", item[1])
    machine = create_machine(compile_source(PROGRAM),
                             externals={"reqC": req, "outC": drain},
                             engine=engine)
    create_scheduler(machine).run()
    return [args[0] for _, args in drain.received]


def _c_outputs(c_binary, script):
    lines = []
    for item in script:
        if item[0] == "C":
            lines.append(f"C {item[1]} {item[2]}")
        else:
            lines.append(f"R {item[1]}")
    result = subprocess.run(
        [c_binary], input="\n".join(lines) + "\n",
        capture_output=True, text=True, timeout=30,
    )
    assert result.returncode == 0, result.stderr
    return [int(x) for x in result.stdout.split()]


@given(st.lists(script_items, min_size=0, max_size=12))
@settings(max_examples=20, deadline=None, derandomize=True)
def test_four_way_agreement(c_binary, script):
    ast = _engine_outputs(script, "ast")
    compiled = _engine_outputs(script, "compiled")
    assert compiled == ast, f"engines diverge on script {script}"
    if find_cc() is not None:  # native leg degrades to three-way
        native = _engine_outputs(script, "native")
        assert native == ast, f"native engine diverges on script {script}"
    assert _c_outputs(c_binary, script) == ast, (
        f"C firmware diverges on script {script}"
    )


def test_engine_env_default(monkeypatch):
    # ESP_ENGINE selects the default; an explicit argument wins.
    monkeypatch.setenv("ESP_ENGINE", "ast")
    program = compile_source(PROGRAM)
    assert Machine(program).engine == "ast"
    assert Machine(program, engine="compiled").engine == "compiled"
    monkeypatch.delenv("ESP_ENGINE")
    assert Machine(program).engine == "compiled"
    with pytest.raises(ValueError):
        Machine(program, engine="jit")
