"""Dedicated unit tests for the heap (refcounts, deep operations,
bounded tables, conversion)."""

import pytest

from repro.errors import MemorySafetyError
from repro.runtime.heap import Heap
from repro.runtime.values import Ref


def test_alloc_sets_refcount_one():
    heap = Heap()
    ref = heap.alloc("record", [1, 2], mutable=False)
    assert heap.get(ref).refcount == 1
    assert heap.live_count() == 1


def test_link_unlink_cycle():
    heap = Heap()
    ref = heap.alloc("array", [0], mutable=True)
    heap.link(ref)
    heap.unlink(ref)
    assert heap.get(ref).refcount == 1
    heap.unlink(ref)
    assert heap.live_count() == 0


def test_unlink_recurses_into_children():
    heap = Heap()
    child = heap.alloc("array", [7], mutable=False)
    parent = heap.alloc("record", [child], mutable=False)
    # parent embeds child: caller is responsible for the embed link.
    heap.link(child)
    heap.unlink(child)  # drop our handle; parent keeps it alive
    assert heap.live_count() == 2
    heap.unlink(parent)
    assert heap.live_count() == 0


def test_double_free_raises():
    heap = Heap()
    ref = heap.alloc("array", [], mutable=False)
    heap.unlink(ref)
    with pytest.raises(MemorySafetyError, match="double free"):
        heap.unlink(ref)


def test_use_after_free_raises():
    heap = Heap()
    ref = heap.alloc("array", [1], mutable=False)
    heap.unlink(ref)
    with pytest.raises(MemorySafetyError, match="use after free"):
        heap.get(ref)


def test_link_after_free_raises():
    heap = Heap()
    ref = heap.alloc("array", [1], mutable=False)
    heap.unlink(ref)
    with pytest.raises(MemorySafetyError):
        heap.link(ref)


def test_unknown_object_raises():
    heap = Heap()
    with pytest.raises(MemorySafetyError, match="unknown object"):
        heap.get(Ref(999))


def test_bounded_table_exhaustion():
    heap = Heap(max_objects=2)
    heap.alloc("array", [], mutable=False)
    heap.alloc("array", [], mutable=False)
    with pytest.raises(MemorySafetyError, match="object table exhausted"):
        heap.alloc("array", [], mutable=False)


def test_bounded_table_frees_make_room():
    heap = Heap(max_objects=1)
    a = heap.alloc("array", [], mutable=False)
    heap.unlink(a)
    heap.alloc("array", [], mutable=False)  # must not raise


def test_deep_copy_independent():
    heap = Heap()
    inner = heap.alloc("array", [1, 2], mutable=True)
    outer = heap.alloc("record", [inner, 5], mutable=True)
    copy = heap.deep_copy(outer)
    inner_copy = heap.get(copy).data[0]
    assert inner_copy != inner
    heap.get(inner).data[0] = 99
    assert heap.get(inner_copy).data[0] == 1


def test_deep_copy_flips_mutability():
    heap = Heap()
    inner = heap.alloc("array", [1], mutable=True)
    outer = heap.alloc("record", [inner], mutable=True)
    frozen = heap.deep_copy(outer, mutable=False)
    assert not heap.get(frozen).mutable
    assert not heap.get(heap.get(frozen).data[0]).mutable


def test_exclusively_owned():
    heap = Heap()
    inner = heap.alloc("array", [1], mutable=False)
    outer = heap.alloc("record", [inner], mutable=False)
    assert heap.exclusively_owned(outer)
    heap.link(inner)  # someone else references inner
    assert not heap.exclusively_owned(outer)


def test_set_mutability_deep():
    heap = Heap()
    inner = heap.alloc("array", [1], mutable=True)
    outer = heap.alloc("union", [inner], mutable=True, tag="t")
    heap.set_mutability_deep(outer, False)
    assert not heap.get(outer).mutable
    assert not heap.get(inner).mutable


def test_to_python_conversions():
    heap = Heap()
    arr = heap.alloc("array", [1, 2, 3], mutable=False)
    rec = heap.alloc("record", [arr, True], mutable=False)
    uni = heap.alloc("union", [rec], mutable=False, tag="wrap")
    assert heap.to_python(uni) == ("wrap", ([1, 2, 3], True))
    assert heap.to_python(42) == 42


def test_counters_track_operations():
    heap = Heap()
    ref = heap.alloc("array", [0], mutable=False)
    heap.link(ref)
    heap.unlink(ref)
    heap.unlink(ref)
    c = heap.counters
    assert (c.allocations, c.links, c.unlinks, c.frees) == (1, 1, 2, 1)
