"""Hypothesis strategies that generate small, well-typed ESP programs.

The generator builds closed producer/consumer systems (no external
interfaces) whose state spaces are finite by construction: each
producer emits a fixed, finite sequence of literal messages and the
consumer runs counted loops.  The draw space still covers the
language features the verifier has to canonicalise — int, record, and
union channel payloads, sequential ``in`` with record destructuring,
``alt`` over union tags, guarded arms, and assertions that may or may
not hold — so differential tests (serial vs. parallel exploration,
interpreter vs. verifier) see violation-free runs, assertion failures,
and deadlocks in one stream of examples.

Every generated program type-checks and compiles; whether it verifies
cleanly is up to the dice (an ``expect`` overshoot deadlocks the
consumer, a tight assertion bound fires on large payloads).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.sim.fabric import FabricConfig
from repro.sim.faults import FaultPlan
from repro.sim.switch import SwitchConfig

# Small domains keep state spaces tiny (hundreds of states, not
# thousands): message payload ints, per-channel message counts.
_INTS = st.integers(min_value=0, max_value=2)
_COUNTS = st.integers(min_value=1, max_value=3)
_KINDS = st.sampled_from(("int", "record", "union"))

_PRELUDE = "type uT = union of { l: int, r: int }\n"

_CHANNEL_TYPES = {
    "int": "int",
    "record": "record of { a: int, b: int }",
    "union": "uT",
}


def _message(draw, kind: str) -> str:
    """One literal message expression of the channel's payload type."""
    if kind == "int":
        return str(draw(_INTS))
    if kind == "record":
        return "{ %d, %d }" % (draw(_INTS), draw(_INTS))
    tag = draw(st.sampled_from(("l", "r")))
    return "{ %s |> %d }" % (tag, draw(_INTS))


def _consume_stmt(draw, ci: int, kind: str, counter: str, bound) -> list[str]:
    """Statements consuming one message from channel ``c<ci>`` inside
    the consumer's counted loop (and maybe asserting about it)."""
    var = f"x{ci}"
    check = []
    if kind == "int":
        if bound is not None:
            check = [f"            assert( {var} <= {bound});"]
        if draw(st.booleans()):
            # A guarded single-arm alt: the guard restates the loop
            # condition, so it is always true — it exercises guard
            # evaluation without changing behaviour.
            return [
                "        alt {",
                f"            case( {counter} >= 0, in( c{ci}, ${var})) {{",
                *(["    " + line for line in check] or
                  ["                skip;"]),
                "            }",
                "        }",
            ]
        out = [f"        in( c{ci}, ${var});"]
        if bound is not None:
            out.append(f"        assert( {var} <= {bound});")
        return out
    if kind == "record":
        out = [f"        in( c{ci}, {{ $a{ci}, $b{ci} }});"]
        if bound is not None:
            out.append(f"        assert( a{ci} + b{ci} <= {bound});")
        return out
    # Union payload: an alt whose arms cover every tag (the pattern
    # checker requires channel coverage to be exhaustive).
    def arm_body(v: str) -> str:
        if bound is not None:
            return f"                assert( {v} <= {bound});"
        return "                skip;"

    return [
        "        alt {",
        f"            case( in( c{ci}, {{ l |> $u{ci} }})) {{",
        arm_body(f"u{ci}"),
        "            }",
        f"            case( in( c{ci}, {{ r |> $v{ci} }})) {{",
        arm_body(f"v{ci}"),
        "            }",
        "        }",
    ]


_RATES = st.sampled_from((0.0, 0.0, 0.01, 0.02, 0.05, 0.1))


@st.composite
def fault_plans(draw) -> FaultPlan:
    """A random deterministic fault plan with bounded rates.

    Every packet-fault rate is drawn from a small menu (most draws are
    0, so plans exercise one or two fault kinds at a time) and the sum
    stays well under 1, keeping end-to-end runs short enough for a
    property test while still covering drop/dup/reorder/delay/corrupt
    mixes and DMA stalls.
    """
    return FaultPlan(
        seed=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        drop=draw(_RATES),
        dup=draw(_RATES),
        reorder=draw(_RATES),
        delay=draw(_RATES),
        corrupt=draw(_RATES),
        dma_stall=draw(_RATES),
    )


@st.composite
def topologies(draw) -> FabricConfig:
    """A random bounded fabric configuration.

    Node counts, port speeds, and buffer sizes are drawn from small
    menus so an end-to-end run stays fast; scenarios are the two the
    conservation property targets (incast concentrates load on one
    port, churn staggers flow starts).  The buffer floor (8 KiB) is
    well above one max-size packet, so tiny draws exercise congestion
    drops without tripping the constructor's capacity check.
    """
    nodes = draw(st.sampled_from((2, 3, 4, 6, 8)))
    scenario = draw(st.sampled_from(("incast", "churn")))
    return FabricConfig(
        nodes=nodes,
        scenario=scenario,
        messages=draw(st.integers(min_value=1, max_value=4)),
        seed=draw(st.integers(min_value=0, max_value=2**16 - 1)),
        window=draw(st.sampled_from((2, 4, 8))),
        chunk_bytes=draw(st.sampled_from((256, 1024))),
        churn_flows=draw(st.integers(min_value=0, max_value=4)),
        churn_span_us=float(draw(st.sampled_from((500, 2_000)))),
        switch=SwitchConfig(
            port_mb_s=draw(st.sampled_from((None, 40.0, 160.0))),
            buffer_bytes=draw(st.sampled_from((8_192, 32_768, 262_144))),
        ),
    )


@st.composite
def esp_programs(draw) -> str:
    """A random small well-typed ESP program (returned as source text).

    Shape: 1–2 rendezvous channels of a random payload kind, one
    producer process per channel emitting 1–3 literal messages, and one
    consumer draining each channel in a counted loop.  With probability
    ~1/4 the consumer expects one message too many on some channel
    (guaranteed deadlock); assertion bounds are drawn tight enough to
    fail sometimes.
    """
    n_channels = draw(st.integers(min_value=1, max_value=2))
    kinds = [draw(_KINDS) for _ in range(n_channels)]
    messages = [[_message(draw, kind) for _ in range(draw(_COUNTS))]
                for kind in kinds]
    # Assertion bound: None (no asserts), or a small int; payload sums
    # reach 4, so bounds below 4 can fire.
    bound = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=4)))
    # Which channel (if any) the consumer over-waits on.
    overshoot = draw(st.sampled_from((None, None, None, 0)))
    if overshoot is not None:
        overshoot = overshoot % n_channels

    lines = [_PRELUDE]
    for ci, kind in enumerate(kinds):
        lines.append(f"channel c{ci}: {_CHANNEL_TYPES[kind]}")
    lines.append("")
    for ci, msgs in enumerate(messages):
        lines.append(f"process prod{ci} {{")
        for msg in msgs:
            lines.append(f"    out( c{ci}, {msg});")
        lines.append("}")
        lines.append("")
    lines.append("process cons {")
    for ci, (kind, msgs) in enumerate(zip(kinds, messages)):
        expect = len(msgs) + (1 if overshoot == ci else 0)
        counter = f"n{ci}"
        lines.append(f"    ${counter} = 0;")
        lines.append(f"    while ({counter} < {expect}) {{")
        lines.extend(_consume_stmt(draw, ci, kind, counter, bound))
        lines.append(f"        {counter} = {counter} + 1;")
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines) + "\n"
