"""The native engine's operational surface (everything that is not
covered by trace parity in test_engine_differential.py):

* the content-addressed build cache — a second machine for the same
  program must load the existing ``.so`` without invoking the compiler;
* graceful degradation — no C compiler means one actionable error from
  the API and an ``espc: error:`` line + exit 2 from the CLI, and
  engine auto-selection never silently picks native;
* ``ESP_ENGINE`` hygiene in the CLI — unknown values are rejected with
  a clear message, and ``--engine`` no longer leaks into (or clobbers)
  the caller's environment;
* ``dlopen`` isolation — each machine gets its own copy of the shared
  object's globals;
* the unsupported-feature errors (``max_objects``, the ``random``
  policy, verification) point at ``--engine compiled``;
* the ``slow``-marked native soak — 10k payloads over a 5%-lossy link
  with exact counter reconciliation, the native twin of the soak in
  test_fault_injection.py.
"""

from __future__ import annotations

import os

import pytest

from repro import compile_source, create_machine, create_scheduler
from repro.backends.c import build
from repro.backends.c.build import NativeBuildUnavailable, find_cc
from repro.runtime.machine import Machine
from repro.runtime.native import NativeMachine, NativeScheduler
from repro.sim.faults import FaultPlan
from repro.tools import cli
from repro.vmmc.retransmission import run_over_faulty_link

needs_cc = pytest.mark.skipif(find_cc() is None,
                              reason="no C compiler available")

SOURCE = """
channel c: int

process ping {
    $i = 0;
    while (i < 3) { out( c, i * 10); i = i + 1; }
}

process pong {
    $n = 0;
    while (n < 3) { in( c, $v); print(v); n = n + 1; }
}
"""

EXPECTED_PRINTS = [("pong", [0]), ("pong", [10]), ("pong", [20])]


def _run_native(program):
    machine = create_machine(program, engine="native")
    result = create_scheduler(machine).run()
    return machine, result


# -- the content-addressed build cache -----------------------------------------


@needs_cc
def test_second_build_hits_cache_without_compiler(tmp_path, monkeypatch):
    monkeypatch.setenv("ESP_NATIVE_CACHE", str(tmp_path))
    program = compile_source(SOURCE)

    first, result = _run_native(program)
    assert not first.cache_hit  # cold cache: the compiler really ran
    assert result.reason == "done"
    assert first.prints == EXPECTED_PRINTS
    artifacts = sorted(p.name for p in tmp_path.iterdir())
    assert len(artifacts) == 2  # {key}.c + {key}.so
    assert {p.rsplit(".", 1)[1] for p in artifacts} == {"c", "so"}

    # Second build: same key, so the compiler must never be invoked.
    def _no_compiler(*args, **kwargs):
        raise AssertionError("cache hit must not invoke the C compiler")

    monkeypatch.setattr(build.subprocess, "run", _no_compiler)
    second, result = _run_native(program)
    assert second.cache_hit
    assert result.reason == "done"
    assert second.prints == EXPECTED_PRINTS
    assert sorted(p.name for p in tmp_path.iterdir()) == artifacts


@needs_cc
def test_cache_key_tracks_the_source(tmp_path, monkeypatch):
    monkeypatch.setenv("ESP_NATIVE_CACHE", str(tmp_path))
    create_machine(compile_source(SOURCE), engine="native")
    create_machine(compile_source(SOURCE.replace("i * 10", "i * 11")),
                   engine="native")
    so_files = [p for p in tmp_path.iterdir() if p.suffix == ".so"]
    assert len(so_files) == 2  # different source, different artifact


# -- graceful degradation without a compiler -----------------------------------


def test_no_compiler_is_one_actionable_error(monkeypatch):
    monkeypatch.setenv("ESP_NATIVE_CC", "/nonexistent/compiler")
    assert find_cc() is None
    with pytest.raises(NativeBuildUnavailable) as exc:
        create_machine(compile_source(SOURCE), engine="native")
    assert str(exc.value) == (
        "no C compiler found for --engine native (install gcc, or point "
        "ESP_NATIVE_CC at one); use --engine compiled instead"
    )


def test_no_compiler_cli_exit_code_2(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("ESP_NATIVE_CC", "/nonexistent/compiler")
    src = tmp_path / "t.esp"
    src.write_text(SOURCE)
    rc = cli.main(["run", str(src), "--engine", "native"])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("espc: error: no C compiler found")
    assert "--engine compiled" in err


def test_auto_selection_never_picks_native(monkeypatch):
    # Whatever the host toolchain looks like, the default engine stays
    # the pure-Python one; native is opt-in only.
    monkeypatch.delenv("ESP_ENGINE", raising=False)
    machine = create_machine(compile_source(SOURCE))
    assert machine.engine == "compiled"


# -- ESP_ENGINE hygiene in the CLI ---------------------------------------------


def test_unknown_esp_engine_is_rejected(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("ESP_ENGINE", "warp")
    src = tmp_path / "t.esp"
    src.write_text(SOURCE)
    rc = cli.main(["run", str(src)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "unknown ESP_ENGINE value 'warp'" in err
    assert "compiled, ast, native" in err


def test_engine_flag_does_not_leak_into_environ(tmp_path, monkeypatch,
                                                capsys):
    src = tmp_path / "t.esp"
    src.write_text(SOURCE)

    monkeypatch.delenv("ESP_ENGINE", raising=False)
    assert cli.main(["run", str(src), "--engine", "ast"]) == 0
    assert "ESP_ENGINE" not in os.environ  # regression: used to leak

    monkeypatch.setenv("ESP_ENGINE", "compiled")
    assert cli.main(["run", str(src), "--engine", "ast"]) == 0
    assert os.environ["ESP_ENGINE"] == "compiled"  # prior value restored
    capsys.readouterr()


def test_machine_class_rejects_native(monkeypatch):
    # Machine() is the snapshot/restore implementation; asking it for
    # the native engine (directly or via ESP_ENGINE) must point at the
    # factory instead of half-working.
    program = compile_source(SOURCE)
    with pytest.raises(ValueError, match="create_machine"):
        Machine(program, engine="native")
    monkeypatch.setenv("ESP_ENGINE", "native")
    with pytest.raises(ValueError, match="create_machine"):
        Machine(program)


@needs_cc
def test_verify_refuses_native(tmp_path, monkeypatch, capsys):
    src = tmp_path / "t.esp"
    src.write_text(SOURCE)
    rc = cli.main(["verify", str(src), "--engine", "native"])
    assert rc == 2
    assert "does not support verification" in capsys.readouterr().err


# -- unsupported features point at --engine compiled ---------------------------


@needs_cc
def test_native_unsupported_features():
    program = compile_source(SOURCE)
    with pytest.raises(ValueError, match="max_objects"):
        NativeMachine(program, max_objects=100)
    machine = create_machine(program, engine="native")
    with pytest.raises(ValueError, match="'random' policy"):
        NativeScheduler(machine, policy="random")
    with pytest.raises(ValueError, match="unknown scheduling policy"):
        NativeScheduler(machine, policy="sorted")


# -- dlopen isolation ----------------------------------------------------------


@needs_cc
def test_two_machines_do_not_share_globals():
    program = compile_source(SOURCE)
    a = create_machine(program, engine="native")
    b = create_machine(program, engine="native")
    # Run `a` to completion first; if the .so image were shared, `b`
    # would observe a's advanced PCs/channel state instead of t=0.
    assert create_scheduler(a).run().reason == "done"
    assert create_scheduler(b).run().reason == "done"
    assert a.prints == EXPECTED_PRINTS
    assert b.prints == EXPECTED_PRINTS
    assert a.counters.transfers == b.counters.transfers == 3


# -- the native soak -----------------------------------------------------------


@pytest.mark.slow
@needs_cc
def test_native_soak_bidirectional_10k_payloads_at_5pct_loss(monkeypatch):
    """The native twin of the soak in test_fault_injection.py: 10k
    payloads across a 5%-lossy link with the firmware Machines running
    inside the shared object, every counter reconciled exactly."""
    monkeypatch.setenv("ESP_ENGINE", "native")
    report = run_over_faulty_link(messages=5000, messages_back=5000,
                                  plan=FaultPlan(seed=42, drop=0.05))
    assert report.converged, report.summary()
    assert report.exactly_once_in_order()
    for side in (0, 1):
        rel = report.nics[side]["reliability"]
        wire = report.wire[f"wire{side}"]
        assert wire["packets"] == (rel["data_sent"] + rel["retransmissions"]
                                   + rel["acks_sent"])
        assert wire["lost"] == report.faults[f"wire{side}"]["drop"]
        assert wire["delivered"] == wire["packets"] - wire["lost"]
        assert rel["data_sent"] == 5000
        assert rel["delivered"] == 5000
        assert rel["retransmissions"] > 0
        assert rel["timeouts"] > 0
        assert rel["recoveries"] > 0
        assert (report.nics[side]["heap_live_objects"]
                == report.nics[side]["heap_live_baseline"])
