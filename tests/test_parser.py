"""Unit tests for the ESP parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse


def parse_stmts(body: str) -> list[ast.Stmt]:
    program = parse("process p { " + body + " }")
    return program.processes()[0].body.stmts


def parse_expr(text: str) -> ast.Expr:
    stmt = parse_stmts(f"$x = {text};")[0]
    assert isinstance(stmt, ast.DeclStmt)
    return stmt.init


# -- declarations -----------------------------------------------------------


def test_type_decl_record():
    program = parse("type sendT = record of { dest: int, vAddr: int, size: int}")
    decl = program.type_decls()[0]
    assert decl.name == "sendT"
    assert isinstance(decl.definition, ast.TRecord)
    assert [n for n, _ in decl.definition.fields] == ["dest", "vAddr", "size"]


def test_type_decl_union_with_ellipsis():
    program = parse("type userT = union of { send: sendT, update: updateT, ...}")
    decl = program.type_decls()[0]
    assert isinstance(decl.definition, ast.TUnion)
    assert [n for n, _ in decl.definition.tags] == ["send", "update"]


def test_type_decl_array_and_mutable():
    program = parse("type dataT = array of int type t2 = #array of bool")
    defs = [d.definition for d in program.type_decls()]
    assert isinstance(defs[0], ast.TArray)
    assert isinstance(defs[1], ast.TMutable)


def test_channel_decl():
    program = parse("channel ptReqC: record of { ret: int, vAddr: int}")
    chan = program.channels()[0]
    assert chan.name == "ptReqC"
    assert isinstance(chan.message_type, ast.TRecord)


def test_const_decl():
    program = parse("const N = 4 * 8;")
    const = program.const_decls()[0]
    assert const.name == "N"
    assert isinstance(const.value, ast.Binary)


def test_external_interface_decl():
    program = parse(
        """
        type userT = union of { send: int, update: int }
        channel userReqC: userT
        external interface userReq(out userReqC) {
            Send({ send |> $v }),
            Update({ update |> $v })
        };
        """
    )
    iface = program.interfaces()[0]
    assert iface.name == "userReq"
    assert iface.direction == "out"
    assert iface.channel == "userReqC"
    assert [e.name for e in iface.entries] == ["Send", "Update"]


def test_process_decl():
    program = parse("process add5 { while(true) { in( c1, $i); out( c2, i+5); } }")
    proc = program.processes()[0]
    assert proc.name == "add5"
    assert len(proc.body.stmts) == 1


def test_top_level_junk_rejected():
    with pytest.raises(ParseError):
        parse("junk")


# -- statements ---------------------------------------------------------------


def test_decl_with_type():
    stmt = parse_stmts("$i: int = 7;")[0]
    assert isinstance(stmt, ast.DeclStmt)
    assert stmt.name == "i"
    assert isinstance(stmt.declared_type, ast.TInt)


def test_decl_inferred():
    stmt = parse_stmts("$j = 36;")[0]
    assert isinstance(stmt, ast.DeclStmt)
    assert stmt.declared_type is None


def test_assignment_to_variable_and_index():
    stmts = parse_stmts("i = 45; table[vAddr] = pAddr;")
    assert isinstance(stmts[0], ast.AssignStmt)
    assert isinstance(stmts[1].target, ast.Index)


def test_assignment_to_literal_rejected():
    with pytest.raises(ParseError):
        parse_stmts("5 = x;")


def test_match_statement_with_annotation():
    # Paper §4.2: `{ send |> { $dest, $vAddr, $size}}: userT = ur2;`
    stmt = parse_stmts("{ send |> { $dest, $vAddr, $size}}: userT = ur2;")[0]
    assert isinstance(stmt, ast.MatchStmt)
    assert isinstance(stmt.pattern, ast.PUnion)
    assert isinstance(stmt.declared_type, ast.TName)


def test_in_statement_with_union_pattern():
    stmt = parse_stmts("in( userReqC, { send |> { $dest, $vAddr, $size}});")[0]
    assert isinstance(stmt, ast.InStmt)
    assert stmt.channel == "userReqC"
    pattern = stmt.pattern
    assert isinstance(pattern, ast.PUnion) and pattern.tag == "send"
    assert all(isinstance(i, ast.PBind) for i in pattern.value.items)


def test_in_statement_with_process_id_constraint():
    stmt = parse_stmts("in( ptReplyC, { @, $pAddr});")[0]
    items = stmt.pattern.items
    assert isinstance(items[0], ast.PEq)
    assert isinstance(items[0].expr, ast.ProcessId)
    assert isinstance(items[1], ast.PBind)


def test_in_statement_receiving_into_lvalue():
    # FIFO example: in( chan1, Q[tl])
    stmt = parse_stmts("in( chan1, Q[tl]);")[0]
    assert isinstance(stmt.pattern, ast.PEq)
    assert isinstance(stmt.pattern.expr, ast.Index)


def test_out_statement():
    stmt = parse_stmts("out( ptReqC, { @, vAddr});")[0]
    assert isinstance(stmt, ast.OutStmt)
    assert isinstance(stmt.value, ast.RecordLit)


def test_alt_with_guards():
    stmt = parse_stmts(
        """
        alt {
            case( !full, in( chan1, $m)) { t = t + 1; }
            case( !empty, out( chan2, x)) { h = h + 1; }
        }
        """
    )[0]
    assert isinstance(stmt, ast.AltStmt)
    assert len(stmt.cases) == 2
    assert stmt.cases[0].guard is not None
    assert isinstance(stmt.cases[0].op, ast.InStmt)
    assert isinstance(stmt.cases[1].op, ast.OutStmt)


def test_alt_without_guard():
    stmt = parse_stmts("alt { case( in( c, $x)) { skip; } }")[0]
    assert stmt.cases[0].guard is None


def test_alt_requires_cases():
    with pytest.raises(ParseError):
        parse_stmts("alt { }")


def test_if_else_chain():
    stmt = parse_stmts("if (a) { skip; } else if (b) { skip; } else { skip; }")[0]
    assert isinstance(stmt, ast.IfStmt)
    nested = stmt.else_block.stmts[0]
    assert isinstance(nested, ast.IfStmt)
    assert nested.else_block is not None


def test_while_with_condition_and_sugar():
    stmts = parse_stmts("while (x < 5) { skip; } while { skip; }")
    assert isinstance(stmts[0].cond, ast.Binary)
    assert isinstance(stmts[1].cond, ast.BoolLit) and stmts[1].cond.value


def test_link_unlink_assert_skip_break_print():
    stmts = parse_stmts(
        "while(true) { link(x); unlink(x); assert(x > 0); skip; print(x, 2); break; }"
    )[0].body.stmts
    classes = [type(s).__name__ for s in stmts]
    assert classes == [
        "LinkStmt", "UnlinkStmt", "AssertStmt", "SkipStmt", "PrintStmt", "BreakStmt",
    ]


# -- expressions ---------------------------------------------------------------


def test_precedence_arithmetic():
    e = parse_expr("1 + 2 * 3")
    assert e.op == "+"
    assert e.right.op == "*"


def test_precedence_comparison_binds_looser_than_arithmetic():
    e = parse_expr("a + 1 < b * 2")
    assert e.op == "<"


def test_precedence_logical():
    e = parse_expr("a && b || c")
    assert e.op == "||"
    assert e.left.op == "&&"


def test_unary_operators():
    e = parse_expr("!a")
    assert isinstance(e, ast.Unary) and e.op == "!"
    e = parse_expr("-5")
    assert isinstance(e, ast.Unary) and e.op == "-"


def test_parentheses_override_precedence():
    e = parse_expr("(1 + 2) * 3")
    assert e.op == "*"
    assert e.left.op == "+"


def test_postfix_chains():
    e = parse_expr("a[i].f[j]")
    assert isinstance(e, ast.Index)
    assert isinstance(e.base, ast.FieldAccess)
    assert isinstance(e.base.base, ast.Index)


def test_record_literal():
    e = parse_expr("{ 7, 54677, 1024}")
    assert isinstance(e, ast.RecordLit)
    assert not e.mutable
    assert len(e.items) == 3


def test_union_literal_nested():
    e = parse_expr("{ send |> { 5, 10000, 512}}")
    assert isinstance(e, ast.UnionLit)
    assert e.tag == "send"
    assert isinstance(e.value, ast.RecordLit)


def test_mutable_array_fill_with_ellipsis():
    e = parse_expr("#{ TABLE_SIZE -> 0, ... }")
    assert isinstance(e, ast.ArrayFill)
    assert e.mutable


def test_array_literal():
    e = parse_expr("[1, 2, 3]")
    assert isinstance(e, ast.ArrayLit)
    assert len(e.items) == 3


def test_cast_expression():
    e = parse_expr("cast(x)")
    assert isinstance(e, ast.Cast)


def test_hash_requires_literal():
    with pytest.raises(ParseError):
        parse_expr("#x")


def test_appendix_b_full_program_parses():
    program = parse(APPENDIX_B)
    assert [p.name for p in program.processes()] == ["pageTable", "SM1"]
    assert len(program.channels()) == 6
    assert len(program.type_decls()) == 4


APPENDIX_B = """
type dataT = array of int
type sendT = record of { dest: int, vAddr: int, size: int}
type updateT = record of { vAddr: int, pAddr: int}
type userT = union of { send: sendT, update: updateT }
const TABLE_SIZE = 64;

channel ptReqC: record of { ret: int, vAddr: int}
channel ptReplyC: record of { ret: int, pAddr: int}
channel dmaReqC: record of { ret: int, pAddr: int, size: int}
channel dmaDataC: record of { ret: int, data: dataT}
channel SM2C: record of { dest: int, data: dataT}
channel userReqC: userT // External (aka C) writer

external interface userReq(out userReqC) {
    Send({ send |> { $dest, $vAddr, $size }}),
    Update({ update |> $new })
};

process pageTable {
    $table: #array of int = #{ TABLE_SIZE -> 0, ... };
    while (true) {
        alt {
            case( in( ptReqC, { $ret, $vAddr})) {
                // Request to lookup a mapping
                out( ptReplyC, { ret, table[vAddr]});
            }
            case( in( userReqC, { update |> { $vAddr, $pAddr}})) {
                // Request to update a mapping
                table[vAddr] = pAddr;
            }
        }
    }
}

process SM1 {
    while (true) {
        in( userReqC, { send |> { $dest, $vAddr, $size}});
        out( ptReqC, { @, vAddr});
        in( ptReplyC, { @, $pAddr});
        out( dmaReqC, { @, pAddr, size});
        in( dmaDataC, { @, $sendData});
        out( SM2C, { dest, sendData});
        unlink( sendData);
    }
}
"""
