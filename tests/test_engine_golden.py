"""Golden event traces for the VMMC retransmission firmware.

``tests/goldens/retrans_seed*.json`` holds the canonical run report
(``FaultyLinkReport.stats_json()`` — delivery lists, per-NIC
reliability and heap counters, wire stats, injected-fault tallies,
convergence time, event count; serialized with sorted keys so the
bytes are stable) for three deterministic fault plans, produced by the
AST reference engine.  The compiled engine must reproduce each file
*byte for byte*: the firmware's Machine sits inside a discrete-event
simulation, so any divergence in instruction counts, timing quanta, or
message contents shows up in the trace.

Regenerating (only after an intentional semantic change, with both
engines re-checked):

    PYTHONPATH=src ESP_ENGINE=ast python tests/test_engine_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.backends.c.build import find_cc
from repro.sim.faults import FaultPlan
from repro.vmmc.retransmission import run_over_faulty_link

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

# Three fault plans covering distinct failure modes: loss+duplication,
# reordering+delay, and corruption+DMA stalls.  Small message counts
# keep each run under a second while still forcing retransmissions.
PLANS = {
    "retrans_seed101": dict(
        messages=60, messages_back=0,
        plan=FaultPlan(seed=101, drop=0.05, dup=0.02)),
    "retrans_seed202": dict(
        messages=60, messages_back=20,
        plan=FaultPlan(seed=202, reorder=0.03, delay=0.05)),
    "retrans_seed303": dict(
        messages=60, messages_back=0,
        plan=FaultPlan(seed=303, drop=0.02, corrupt=0.02, dma_stall=0.01)),
}


def _run(name: str) -> str:
    report = run_over_faulty_link(window=4, **PLANS[name])
    assert report.converged, f"{name} did not converge"
    assert report.exactly_once_in_order(), f"{name} delivery check failed"
    return report.stats_json() + "\n"


@pytest.mark.parametrize("name", sorted(PLANS))
def test_compiled_engine_matches_golden(name, monkeypatch):
    # The default engine (compiled) must reproduce the reference trace
    # byte for byte.
    monkeypatch.delenv("ESP_ENGINE", raising=False)
    golden = (GOLDEN_DIR / f"{name}.json").read_text()
    assert _run(name) == golden


@pytest.mark.parametrize("name", sorted(PLANS))
def test_ast_engine_matches_golden(name, monkeypatch):
    # The reference engine still reproduces its own goldens — guards
    # against interpreter drift invalidating the files silently.
    monkeypatch.setenv("ESP_ENGINE", "ast")
    golden = (GOLDEN_DIR / f"{name}.json").read_text()
    assert _run(name) == golden


@pytest.mark.parametrize("name", sorted(PLANS))
@pytest.mark.skipif(find_cc() is None, reason="no C compiler available")
def test_native_engine_matches_golden(name, monkeypatch):
    # The loaded native engine (C shared object, batched quanta) must
    # also reproduce the reference traces byte for byte — through the
    # whole firmware + discrete-event simulation stack.
    monkeypatch.setenv("ESP_ENGINE", "native")
    golden = (GOLDEN_DIR / f"{name}.json").read_text()
    assert _run(name) == golden


def test_goldens_are_canonical_json():
    for name in sorted(PLANS):
        text = (GOLDEN_DIR / f"{name}.json").read_text()
        data = json.loads(text)
        # sorted keys + trailing newline == the exact stats_json format
        assert text == json.dumps(data, sort_keys=True) + "\n"
        assert data["converged"] is True


if __name__ == "__main__":  # regeneration entry point (see docstring)
    for name in sorted(PLANS):
        (GOLDEN_DIR / f"{name}.json").write_text(_run(name))
        print(f"wrote goldens/{name}.json")
