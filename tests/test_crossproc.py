"""Tests for cross-process constant propagation (the §6.2 future-work
data-flow analysis extended across processes)."""

from repro import (
    CollectorReader,
    Machine,
    OptLevel,
    QueueWriter,
    Scheduler,
    compile_source,
)
from repro.api import compile_source_with_stats
from repro.ir import nodes as ir
from repro.ir.crossproc import analyze_cross_process_constants
from repro.ir.lower import lower
from repro.lang.program import frontend
from repro.lang import ast


def analyze(src):
    program = lower(frontend(src))
    return program, analyze_cross_process_constants(program)


BASIC = """
channel cfgC: record of { mode: int, value: int }
channel outC: int
external interface drain(in outC) { D($v) };
process sender {
    $i = 0;
    while (i < 3) { out( cfgC, { 7, i }); i = i + 1; }
}
process receiver {
    while (true) {
        in( cfgC, { $mode, $value });
        out( outC, mode * 100 + value);
    }
}
"""


def test_constant_component_detected():
    program, stats = analyze(BASIC)
    assert stats.constant_components == 1   # `mode` is always 7
    assert stats.binders_propagated == 1
    facts = stats.facts["receiver"]
    assert list(facts.values()) == [7]


def test_varying_component_not_propagated():
    program, stats = analyze(BASIC)
    facts = stats.facts["receiver"]
    assert all("value" not in name for name in facts)


def test_propagated_constant_is_folded_into_receiver():
    program, stats, _ = compile_source_with_stats(BASIC)
    assert stats.crossproc_binders == 1
    receiver = program.process("receiver")
    # `mode * 100` folded to 700: the Out expression adds 700 directly.
    out = next(i for i in receiver.instrs if isinstance(i, ir.Out))
    from repro.ir.liveness import expr_uses

    uses = set()
    expr_uses(out.expr, uses)
    assert not any(u.startswith("mode") for u in uses)


def test_behaviour_preserved():
    outputs = {}
    for level in (OptLevel.NONE, OptLevel.FULL):
        drain = CollectorReader(["D"])
        machine = Machine(compile_source(BASIC, opt_level=level),
                          externals={"outC": drain})
        Scheduler(machine).run()
        outputs[level] = drain.received
    assert outputs[OptLevel.NONE] == outputs[OptLevel.FULL]
    assert [args[0] for _, args in outputs[OptLevel.FULL]] == [700, 701, 702]


def test_disagreement_between_senders_blocks_propagation():
    src = """
channel cfgC: record of { mode: int, value: int }
channel outC: int
external interface drain(in outC) { D($v) };
process s1 { out( cfgC, { 7, 1 }); }
process s2 { out( cfgC, { 8, 2 }); }
process receiver {
    $n = 0;
    while (n < 2) { in( cfgC, { $mode, $value }); out( outC, mode); n = n + 1; }
}
"""
    _, stats = analyze(src)
    assert stats.binders_propagated == 0


def test_external_writer_blocks_propagation():
    src = """
channel cfgC: record of { mode: int, value: int }
channel outC: int
external interface feed(out cfgC) { F($mode, $value) };
external interface drain(in outC) { D($v) };
process receiver {
    while (true) { in( cfgC, { $mode, $value }); out( outC, mode + value); }
}
"""
    _, stats = analyze(src)
    assert stats.binders_propagated == 0


def test_reassigned_binder_blocks_propagation():
    src = """
channel cfgC: record of { mode: int, value: int }
channel outC: int
external interface drain(in outC) { D($v) };
process sender { out( cfgC, { 7, 1 }); }
process receiver {
    in( cfgC, { $mode, $value });
    mode = mode + value;
    out( outC, mode);
}
"""
    _, stats = analyze(src)
    facts = stats.facts["receiver"]
    # `mode` is reassigned, so it is excluded; `value` (never written
    # again) is still a sound constant.
    assert not any(name.startswith("mode") for name in facts)
    assert stats.binders_propagated == 1


def test_scalar_channel_constant():
    src = """
channel sigC: int
channel outC: int
external interface drain(in outC) { D($v) };
process sender { $i = 0; while (i < 3) { out( sigC, 5); i = i + 1; } }
process receiver { while (true) { in( sigC, $s); out( outC, s + 1); } }
"""
    _, stats = analyze(src)
    assert stats.binders_propagated == 1
    program, pstats, _ = compile_source_with_stats(src)
    drain = CollectorReader(["D"])
    machine = Machine(program, externals={"outC": drain})
    Scheduler(machine).run()
    assert [args[0] for _, args in drain.received] == [6, 6, 6]


def test_constants_chain_through_pipelines():
    # sender -> stage1 -> stage2: the constant crosses two channels
    # because the pipeline iterates the analysis.
    src = """
channel aC: int
channel bC: int
channel outC: int
external interface drain(in outC) { D($v) };
process sender { out( aC, 3); }
process stage1 { in( aC, $x); out( bC, x * 2); }
process stage2 { in( bC, $y); out( outC, y + 1); }
"""
    program, stats, _ = compile_source_with_stats(src)
    assert stats.crossproc_binders == 2  # x and y both constant
    stage2 = program.process("stage2")
    out = next(i for i in stage2.instrs if isinstance(i, ir.Out))
    assert isinstance(out.expr, ast.IntLit)
    assert out.expr.value == 7


def test_alt_out_arm_sites_participate():
    src = """
channel cfgC: record of { mode: int, v: int }
channel goC: int
channel outC: int
external interface feed(out goC) { G($x) };
external interface drain(in outC) { D($v) };
process sender {
    while (true) {
        alt {
            case( in( goC, $g)) { skip; }
            case( out( cfgC, { 7, 0 })) { skip; }
        }
    }
}
process receiver {
    while (true) { in( cfgC, { $mode, $v }); out( outC, mode); }
}
"""
    _, stats = analyze(src)
    assert stats.binders_propagated >= 1
