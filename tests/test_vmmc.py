"""Tests for the VMMC case study: both firmware implementations must
deliver the same protocol behaviour on the simulated platform."""

import pytest

from repro.sim.timing import CostModel
from repro.vmmc.firmware_esp import compile_vmmc_esp, VMMC_ESP_SOURCE
from repro.vmmc.packets import SendWindow, ack_packet, data_packet
from repro.vmmc.workloads import (
    IMPLEMENTATIONS,
    bidirectional_bandwidth,
    build_pair,
    one_way_bandwidth,
    pingpong_latency,
)

FAST_COST = CostModel()


# -- packets / window --------------------------------------------------------------


def test_send_window_opens_and_closes():
    w = SendWindow(2)
    assert w.open()
    w.take_seq()
    w.take_seq()
    assert not w.open()
    assert w.in_flight() == 2
    assert w.ack(0) == 1
    assert w.open()
    assert w.ack(1) == 1
    assert w.in_flight() == 0


def test_window_ignores_stale_and_future_acks():
    w = SendWindow(4)
    w.take_seq()
    assert w.ack(-1) == 0
    assert w.ack(5) == 1  # clamps to what was actually sent
    assert w.in_flight() == 0


def test_packet_constructors():
    d = data_packet(0, 1, 7, 3, 256, 9, True)
    assert d["type"] == "data" and d["seq"] == 7 and d["last"]
    a = ack_packet(1, 0, 7)
    assert a["type"] == "ack" and a["nbytes"] == 0


# -- the ESP firmware program itself ------------------------------------------------


def test_vmmc_esp_source_compiles():
    program = compile_vmmc_esp()
    names = [p.name for p in program.processes]
    assert names == ["pageTable", "sm1", "sender", "receiver", "acker",
                     "completer"]
    assert len(program.channels) == 14


def test_vmmc_esp_uses_union_dispatch():
    # hostReqC is read by both pageTable (update) and sm1 (send);
    # netInC by both sender (ack) and receiver (data).
    program = compile_vmmc_esp()
    host_ports = program.ports.ports["hostReqC"]
    assert {p.reader for p in host_ports} == {"pageTable", "sm1"}
    net_ports = program.ports.ports["netInC"]
    assert {p.reader for p in net_ports} == {"sender", "receiver"}


def test_vmmc_esp_memory_safety_of_processes():
    # §5.3: each process is verified separately. The two with heap
    # traffic are sm1 (allocates chunk buffers) and sender (unlinks).
    from repro.lang.program import frontend
    from repro.verify import verify_process

    front = frontend(VMMC_ESP_SOURCE)
    for process in ("completer", "acker"):
        report = verify_process(front, process, max_states=20_000)
        assert report.ok, report.summary()


# -- functional equivalence across implementations -------------------------------------


@pytest.mark.parametrize("impl", IMPLEMENTATIONS)
def test_pingpong_terminates_and_measures(impl):
    result = pingpong_latency(impl, 4, rounds=4, warmup=1)
    assert result.latency_us is not None
    assert result.latency_us > 0
    assert result.messages == 4


@pytest.mark.parametrize("impl", IMPLEMENTATIONS)
def test_one_way_delivers_all_messages(impl):
    result = one_way_bandwidth(impl, 1024, messages=8)
    assert result.messages == 8
    assert result.bandwidth_mb_s > 0


@pytest.mark.parametrize("impl", IMPLEMENTATIONS)
def test_bidirectional_delivers_both_directions(impl):
    result = bidirectional_bandwidth(impl, 1024, messages=5)
    assert result.messages == 10


@pytest.mark.parametrize("impl", IMPLEMENTATIONS)
def test_multi_page_messages_are_chunked(impl):
    pair = build_pair(impl)
    received = []
    pair.hosts[1].on_notify = received.append
    pair.hosts[0].send(1, 0, 10000)  # 3 pages
    pair.sim.run_until(lambda: received, max_events=2_000_000)
    assert len(received) == 1
    # 3 data chunks crossed the wire (plus acks).
    assert pair.wire.direction_stats(0)["packets"] >= 3


@pytest.mark.parametrize("impl", IMPLEMENTATIONS)
def test_update_requests_are_processed(impl):
    pair = build_pair(impl)
    pair.hosts[0].update_translation(0, 0x2000)
    pair.sim.run_until(lambda: pair.sim.pending() == 0, max_events=100_000)
    received = []
    pair.hosts[1].on_notify = received.append
    pair.hosts[0].send(1, 0, 100)
    pair.sim.run_until(lambda: received, max_events=2_000_000)
    assert received


def test_latency_monotone_in_size():
    for impl in IMPLEMENTATIONS:
        l_small = pingpong_latency(impl, 4, rounds=4, warmup=1).latency_us
        l_big = pingpong_latency(impl, 4096, rounds=4, warmup=1).latency_us
        assert l_big > l_small


def test_small_message_discontinuity():
    # Figure 5's 32/64 B jump: 32 B messages are inlined (no fetch
    # DMA); 64 B messages are not.
    for impl in IMPLEMENTATIONS:
        l32 = pingpong_latency(impl, 32, rounds=4, warmup=1).latency_us
        l64 = pingpong_latency(impl, 64, rounds=4, warmup=1).latency_us
        assert l64 - l32 > 2.0, impl  # the fetch DMA startup appears


def test_page_discontinuity():
    # Figure 5's 4/8 KB jump: a second page means a second translate +
    # fetch + packet.
    for impl in IMPLEMENTATIONS:
        l4k = pingpong_latency(impl, 4096, rounds=4, warmup=1).latency_us
        l8k = pingpong_latency(impl, 8192, rounds=4, warmup=1).latency_us
        assert l8k / l4k > 1.3, impl


def test_fastpath_statistics_exposed():
    result = pingpong_latency("orig", 4, rounds=4, warmup=1)
    assert result.extra["nic0_fastpath_taken"] > 0
    nofast = pingpong_latency("orig_nofast", 4, rounds=4, warmup=1)
    assert nofast.extra["nic0_fastpath_taken"] == 0


def test_esp_heap_is_clean_after_run():
    # Every chunk buffer allocated by sm1 must be reclaimed: no leaks
    # in the ESP firmware under sustained traffic.
    pair = build_pair("esp")
    received = []
    pair.hosts[1].on_notify = received.append
    for _ in range(6):
        pair.hosts[0].send(1, 0, 2048)
    pair.sim.run_until(lambda: len(received) >= 6, max_events=4_000_000)
    for nic in pair.nics:
        fw = nic.firmware
        assert fw.machine.heap.live_count() <= 1  # only pageTable's table
