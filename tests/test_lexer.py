"""Unit tests for the ESP lexer."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind as K


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def test_empty_input_yields_only_eof():
    tokens = tokenize("")
    assert [t.kind for t in tokens] == [K.EOF]


def test_keywords_are_distinguished_from_identifiers():
    assert kinds("process processes") == [K.KW_PROCESS, K.IDENT]


def test_all_keywords_lex():
    from repro.lang.tokens import KEYWORDS

    for word, kind in KEYWORDS.items():
        assert kinds(word) == [kind], word


def test_integer_literals_decimal():
    tokens = tokenize("0 7 54677 1024")
    assert [t.value for t in tokens[:-1]] == [0, 7, 54677, 1024]


def test_integer_literals_hex():
    tokens = tokenize("0x10 0xff 0XAB")
    assert [t.value for t in tokens[:-1]] == [16, 255, 171]


def test_malformed_hex_rejected():
    with pytest.raises(LexError):
        tokenize("0x")


def test_malformed_number_rejected():
    with pytest.raises(LexError):
        tokenize("12abc")


def test_identifier_with_underscores_and_digits():
    tokens = tokenize("_foo bar_2 Send")
    assert [t.text for t in tokens[:-1]] == ["_foo", "bar_2", "Send"]


def test_sigils():
    assert kinds("$ # @ |> -> ...") == [
        K.DOLLAR, K.HASH, K.AT, K.TRIANGLE, K.ARROW, K.ELLIPSIS,
    ]


def test_triangle_not_confused_with_pipe_gt():
    # `|>` must lex as one token, `| >` as two.
    assert kinds("|>") == [K.TRIANGLE]
    assert kinds("| >") == [K.PIPE, K.GT]


def test_arrow_not_confused_with_minus_gt():
    assert kinds("->") == [K.ARROW]
    assert kinds("- >") == [K.MINUS, K.GT]


def test_comparison_operators_maximal_munch():
    assert kinds("<= >= == != < > =") == [
        K.LE, K.GE, K.EQ, K.NE, K.LT, K.GT, K.ASSIGN,
    ]


def test_shift_operators():
    assert kinds("<< >>") == [K.SHL, K.SHR]


def test_logical_operators():
    assert kinds("&& || ! & |") == [K.AND, K.OR, K.NOT, K.AMP, K.PIPE]


def test_line_comment_skipped():
    assert kinds("a // comment with symbols |> $\nb") == [K.IDENT, K.IDENT]


def test_block_comment_skipped():
    assert kinds("a /* multi\nline */ b") == [K.IDENT, K.IDENT]


def test_unterminated_block_comment_rejected():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_unexpected_character_rejected():
    with pytest.raises(LexError):
        tokenize("a ? b")


def test_spans_track_lines_and_columns():
    tokens = tokenize("ab\n  cd")
    assert tokens[0].span.start.line == 1
    assert tokens[0].span.start.column == 1
    assert tokens[1].span.start.line == 2
    assert tokens[1].span.start.column == 3


def test_paper_fragment_lexes():
    text = "in( userReqC, { send |> { $dest, $vAddr, $size}});"
    ks = kinds(text)
    assert K.TRIANGLE in ks
    assert ks.count(K.DOLLAR) == 3


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_integer_roundtrip(n):
    token = tokenize(str(n))[0]
    assert token.kind is K.INT
    assert token.value == n


@given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu")), min_size=1, max_size=12))
def test_property_alpha_words_lex_as_single_token(word):
    tokens = tokenize(word)
    assert len(tokens) == 2  # word + EOF


@given(st.lists(st.sampled_from(["+", "-", "*", "/", "(", ")", "{", "}", ";", ",", "12", "x"]), max_size=30))
def test_property_token_concatenation_with_spaces(parts):
    # Joining arbitrary valid tokens with spaces must always lex, and
    # produce exactly one token per part.
    text = " ".join(parts)
    tokens = tokenize(text)
    assert len(tokens) == len(parts) + 1
