"""Reduction-differential suite: reduced exploration must prove the
same things plain exploration proves.

Partial-order reduction and symmetry canonicalization
(:mod:`repro.verify.reduction`) change *which* states the verifier
stores and *which* interleavings it expands; a bug in either one
manifests as a silently missed violation — the worst possible failure
mode for a verifier.  This suite is the soundness argument in
executable form: for every program, plain exploration and each
reduction mode (``por``, ``sym``, ``por,sym``) must agree on

* the verdict (``result.ok``),
* the *set* of violation kinds (reduction may legitimately merge
  symmetric or commuting counterexamples, so violation counts and
  specific traces may differ — the kinds may not), and
* counterexample reality: every violation found in a reduced run must
  replay, move description by move description, on a fresh unreduced
  AST-walker machine and reproduce a violation of the same kind
  (:func:`repro.verify.counterexample.replay_on_reference`).

Three legs: the ``examples/esp`` corpus, the firmware-derived
retransmission protocol at several window/message sizes, and 200
derandomized hypothesis programs (``derandomize=True`` pins the
corpus, so a failure shrinks to a minimal program).

Debugging a divergence: re-run the failing program through
``espc verify --reduce=<mode> --stats-json`` and see the "debugging a
verdict divergence" recipe in docs/VERIFIER.md.

The ``ESP_REDUCE`` environment variable restricts the mode list (CI
runs one mode per matrix job): ``ESP_REDUCE=por`` checks plain-vs-por
only.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro import Machine, compile_source
from repro.verify.counterexample import replay_on_reference
from repro.verify.environment import default_verification_bridges
from repro.verify.explorer import Explorer
from repro.vmmc.retransmission import build_machine, protocol_source
from tests.strategies import esp_programs

ESP_DIR = Path(__file__).resolve().parent.parent / "examples" / "esp"
EXAMPLES = sorted(p.name for p in ESP_DIR.glob("*.esp"))
assert EXAMPLES, "examples/esp corpus missing"

ALL_MODES = ("por", "sym", "por,sym")
MODES = tuple(os.environ.get("ESP_REDUCE", ";".join(ALL_MODES)).split(";"))

# Identical caps on both sides keep the vmmc example affordable; a
# capped run still yields a valid differential on everything explored.
STATE_CAPS = {"vmmc.esp": 2_000}


def _explore(program, reduce=None, max_states=None):
    machine = Machine(program, externals=default_verification_bridges(program))
    kwargs = {} if max_states is None else {"max_states": max_states}
    return Explorer(machine, quiescence_ok=False, stop_at_first=False,
                    reduce=reduce, **kwargs).explore()


def _assert_equivalent(source, mode, plain, reduced, max_states=None,
                       filename="<red-diff>"):
    """The three-part contract: verdict, kind set, replayable traces."""
    context = f"[reduce={mode}] {filename}"
    assert reduced.ok == plain.ok, (
        f"{context}: verdict diverged (plain ok={plain.ok}, "
        f"reduced ok={reduced.ok})\nprogram:\n{source}"
    )
    plain_kinds = {v.kind for v in plain.violations}
    reduced_kinds = {v.kind for v in reduced.violations}
    assert reduced_kinds == plain_kinds, (
        f"{context}: violation kinds diverged "
        f"({plain_kinds} vs {reduced_kinds})\nprogram:\n{source}"
    )
    if plain.complete and reduced.complete:
        # Reduction only ever merges or skips states, never invents
        # them, so a completed reduced run stores at most as many.
        assert reduced.states <= plain.states, (
            f"{context}: reduced run stored MORE states "
            f"({reduced.states} > {plain.states})"
        )
    for violation in reduced.violations:
        program = compile_source(source, filename)
        reproduced = replay_on_reference(program, violation,
                                         quiescence_ok=False)
        assert reproduced.kind == violation.kind, (
            f"{context}: counterexample replayed to "
            f"{reproduced.kind!r}, reduced run reported "
            f"{violation.kind!r}\nprogram:\n{source}"
        )


def _differential(source, mode, max_states=None, filename="<red-diff>"):
    plain = _explore(compile_source(source, filename), None, max_states)
    reduced = _explore(compile_source(source, filename), mode, max_states)
    _assert_equivalent(source, mode, plain, reduced, max_states, filename)


# -- leg 1: the examples corpus ------------------------------------------------


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("example", EXAMPLES)
def test_examples_reduction_differential(example, mode):
    source = (ESP_DIR / example).read_text()
    _differential(source, mode, STATE_CAPS.get(example), example)


# -- leg 2: the retransmission protocol family ---------------------------------
#
# The acceptance model: rendezvous-heavy, replicated senders, known
# deadlock at quiescence (the protocol terminates), and the model the
# 10x benchmark gate runs on.


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("window,messages", [(1, 2), (2, 3), (3, 4)])
def test_retransmission_reduction_differential(window, messages, mode):
    source = protocol_source(window, messages)
    name = f"retransmission w{window}m{messages}"
    plain = Explorer(build_machine(source), quiescence_ok=False,
                     stop_at_first=False).explore()
    reduced = Explorer(build_machine(source), quiescence_ok=False,
                       stop_at_first=False, reduce=mode).explore()
    _assert_equivalent(source, mode, plain, reduced, filename=name)


# -- leg 3: random programs (pinned corpus, shrink-friendly) -------------------


@settings(max_examples=200, deadline=None, derandomize=True)
@given(esp_programs())
def test_random_programs_reduction_differential(source):
    # Generated over-waiting consumers deadlock; quiescence_ok=False
    # turns those into violations, so the deadlock verdict — the thing
    # an unsound ample set is most likely to lose — is part of the
    # contract on every generated program.
    for mode in MODES:
        _differential(source, mode)


# -- the expanded-vs-pruned reporting fix --------------------------------------


def test_summary_reports_expanded_vs_pruned_separately():
    # Regression for the reporting half of the reduction work: before,
    # `summary()` printed one conflated transition count, so reduction
    # wins (and bugs) were invisible.  The pruned count must appear in
    # the summary and in the stats dict that --stats-json serialises.
    source = protocol_source(2, 3)
    result = Explorer(build_machine(source), quiescence_ok=False,
                      stop_at_first=False, reduce="por,sym").explore()
    assert result.transitions_pruned > 0
    summary = result.summary()
    assert f"{result.transitions} transitions expanded" in summary
    assert f"({result.transitions_pruned} pruned)" in summary
    reduction = result.stats["reduction"]
    assert reduction["transitions_pruned"] == result.transitions_pruned
    assert reduction["modes"] == "por,sym"
    for counter in ("ample_hits", "chained", "sym_collisions"):
        assert counter in reduction, counter

    plain = Explorer(build_machine(source), quiescence_ok=False,
                     stop_at_first=False).explore()
    assert plain.transitions_pruned == 0
    assert "(0 pruned)" in plain.summary()
