"""Unit tests for channel pattern analysis (ports, disjointness,
exhaustiveness)."""

import pytest

from repro.errors import PatternError
from repro.lang.parser import parse
from repro.lang.patterns import (
    Eq,
    Rec,
    Uni,
    Wild,
    analyze,
    check_exhaustive,
    shapes_disjoint,
)
from repro.lang.typecheck import check
from repro.lang.types import INT, RecordType, UnionType


def analyze_program(text):
    return analyze(check(parse(text)))


PRELUDE = """
type sendT = record of { dest: int, vAddr: int, size: int}
type updateT = record of { vAddr: int, pAddr: int}
type userT = union of { send: sendT, update: updateT }
channel userC: userT
channel replyC: record of { ret: int, val: int}
"""


# -- shape algebra ------------------------------------------------------------


def test_disjoint_union_tags():
    a = Uni("send", Wild())
    b = Uni("update", Wild())
    assert shapes_disjoint(a, b)


def test_same_tag_not_disjoint():
    a = Uni("send", Wild())
    b = Uni("send", Rec((Wild(), Wild())))
    assert not shapes_disjoint(a, b)


def test_disjoint_eq_constants():
    assert shapes_disjoint(Rec((Eq(0), Wild())), Rec((Eq(1), Wild())))
    assert not shapes_disjoint(Rec((Eq(1), Wild())), Rec((Eq(1), Wild())))


def test_wild_overlaps_everything():
    assert not shapes_disjoint(Wild(), Uni("send", Wild()))
    assert not shapes_disjoint(Wild(), Eq(3))


def test_record_disjoint_if_any_column_disjoint():
    a = Rec((Eq(0), Uni("send", Wild())))
    b = Rec((Eq(0), Uni("update", Wild())))
    assert shapes_disjoint(a, b)


# -- exhaustiveness ---------------------------------------------------------------


UNION = UnionType((("a", INT), ("b", INT)))


def test_exhaustive_wildcard():
    cov = check_exhaustive(INT, [Wild()])
    assert cov.exhaustive and not cov.dynamic


def test_union_requires_all_tags():
    cov = check_exhaustive(UNION, [Uni("a", Wild())])
    assert not cov.exhaustive
    assert any("b" in m for m in cov.missing)


def test_union_all_tags_covered():
    cov = check_exhaustive(UNION, [Uni("a", Wild()), Uni("b", Wild())])
    assert cov.exhaustive and not cov.dynamic


def test_eq_coverage_is_dynamic():
    rec = RecordType((("ret", INT), ("val", INT)))
    cov = check_exhaustive(rec, [Rec((Eq(0), Wild())), Rec((Eq(1), Wild()))])
    assert cov.exhaustive and cov.dynamic


# -- whole-program port analysis -----------------------------------------------


def test_union_dispatch_two_processes():
    analysis = analyze_program(
        PRELUDE
        + """
process a { in( userC, { send |> { $d, $v, $s }}); print(d); }
process b { in( userC, { update |> { $v, $p }}); print(v); }
process c { out( userC, { send |> { 1, 2, 3 }}); }
"""
    )
    ports = analysis.ports["userC"]
    assert len(ports) == 2
    assert {p.reader for p in ports} == {"a", "b"}


def test_overlapping_patterns_rejected():
    with pytest.raises(PatternError, match="overlap"):
        analyze_program(
            PRELUDE
            + """
process a { in( userC, { send |> { $d, $v, $s }}); print(d); }
process b { in( userC, $any); unlink(any); }
"""
        )


def test_same_pattern_two_processes_rejected():
    with pytest.raises(PatternError, match="one process only"):
        analyze_program(
            PRELUDE
            + """
process a { in( userC, { send |> { $d, $v, $s }}); print(d); }
process b { in( userC, { send |> { $x, $y, $z }}); print(x); }
"""
        )


def test_same_pattern_same_process_shares_port():
    analysis = analyze_program(
        PRELUDE
        + """
process a {
    in( userC, { send |> { $d, $v, $s }});
    in( userC, { send |> { $d2, $v2, $s2 }});
    print(d + d2);
}
process b { in( userC, { update |> { $v, $p }}); print(v); }
"""
    )
    ports = analysis.ports["userC"]
    send_port = [p for p in ports if p.reader == "a"][0]
    assert len(send_port.uses) == 2


def test_union_not_exhaustive_rejected():
    with pytest.raises(PatternError, match="exhaustive"):
        analyze_program(
            PRELUDE
            + "process a { in( userC, { send |> { $d, $v, $s }}); print(d); }"
        )


def test_process_id_reply_routing():
    # Two processes each read replies tagged with their own pid: disjoint.
    analysis = analyze_program(
        PRELUDE
        + """
process a { in( replyC, { @, $v }); print(v); }
process b { in( replyC, { @, $v }); print(v); }
process c { out( replyC, { 0, 42 }); }
"""
    )
    ports = analysis.ports["replyC"]
    assert len(ports) == 2
    assert {p.shape for p in ports} == {Rec((Eq(0), Wild())), Rec((Eq(1), Wild()))}


def test_conflicting_pid_and_literal_rejected():
    # Process a has pid 0; a literal 0 pattern in b collides with a's `@`
    # (reported as a duplicate port claimed by two processes).
    with pytest.raises(PatternError):
        analyze_program(
            PRELUDE
            + """
process a { in( replyC, { @, $v }); print(v); }
process b { in( replyC, { 0, $v }); print(v); }
"""
        )


def test_interface_entries_become_external_ports():
    analysis = analyze_program(
        PRELUDE
        + """
channel notifyC: int
external interface notify(in notifyC) { Notify($v) };
process p { out( notifyC, 1); }
"""
    )
    ports = analysis.ports["notifyC"]
    assert len(ports) == 1
    assert ports[0].reader is None
    assert ports[0].entry_name == "Notify"


def test_port_indexes_stamped_on_patterns():
    program = parse(
        PRELUDE
        + """
process a { in( userC, { send |> { $d, $v, $s }}); print(d); }
process b { in( userC, { update |> { $v, $p }}); print(v); }
"""
    )
    checked = check(program)
    analyze(checked)
    uses = checked.in_uses["userC"]
    indexes = {u.process: u.pattern.port_index for u in uses}
    assert set(indexes.values()) == {0, 1}
