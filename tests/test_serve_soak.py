"""Concurrency differential soak for ``espc serve``.

N concurrent clients flood one daemon with a mixed corpus — the
examples, the retransmission protocol family, hand-built chains, and
derandomized hypothesis programs — with every job duplicated across
clients so cache hits, in-flight coalescing, and same-key races all
actually happen.  The contract under that load:

* every reply's verdict, state/transition counts, and full violation
  text (messages AND traces) are byte-identical to a serial
  ``espc verify``-equivalent run of the same spec in this process;
* two replies for the same cache key are byte-identical to each other,
  no matter which client got the cached copy and which raced;
* each distinct cache key was explored exactly once — the daemon's
  books must show ``submitted == completed + cache hits + coalesced``
  with ``completed == len(unique keys)``.
"""

from __future__ import annotations

import random
import threading
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.serve.client import ServeClient
from repro.serve.keys import JobSpec, job_key
from repro.serve.worker import deterministic_body
from repro.vmmc.retransmission import protocol_source
from tests.serve_util import (
    canonical_json,
    chain_source,
    daemon_process,
    serial_reference,
)
from tests.strategies import esp_programs

ESP_DIR = Path(__file__).resolve().parent.parent / "examples" / "esp"

CLIENTS = 4
COPIES = 3  # each spec submitted this many times across clients


def _corpus() -> list[JobSpec]:
    specs = []
    # Leg 1: the examples corpus (vmmc capped like the reduction suite).
    for name in ("add5.esp", "appendix_b.esp", "retransmission.esp"):
        source = (ESP_DIR / name).read_text()
        specs.append(JobSpec(source=source, filename=name))
    specs.append(JobSpec(source=(ESP_DIR / "vmmc.esp").read_text(),
                         filename="vmmc.esp", max_states=2_000))
    # Leg 2: the retransmission family, spread over engines, stores,
    # and reduction modes (quiescence_ok=False turns protocol
    # termination into a deadlock verdict: violation traces included).
    family = [(1, 2), (2, 3), (3, 4)]
    for i, (window, messages) in enumerate(family):
        source = protocol_source(window, messages)
        specs.append(JobSpec(source=source, quiescence_ok=False))
        specs.append(JobSpec(source=source, quiescence_ok=False,
                             reduce="por,sym"))
        specs.append(JobSpec(source=source, quiescence_ok=False,
                             store="disk"))
        if i < 2:
            specs.append(JobSpec(source=source, quiescence_ok=False,
                                 parallel=2))
    # Leg 3: chains with ok and violating verdicts at several sizes.
    for n in (2, 4, 6):
        specs.append(JobSpec(source=chain_source(n)))
        specs.append(JobSpec(source=chain_source(n, assert_bound=1)))
    specs.append(JobSpec(source=chain_source(5), store="disk"))
    specs.append(JobSpec(source=chain_source(5), parallel=3))
    return specs


@pytest.mark.slow
def test_concurrent_clients_match_serial_verify(tmp_path):
    specs = _corpus()
    references = {
        id(spec): canonical_json(serial_reference(spec)) for spec in specs
    }
    unique_keys = {job_key(spec) for spec in specs}

    # Duplicate and deal across clients (deterministic shuffle): the
    # same spec lands on different connections, so identical keys race.
    jobs = [spec for spec in specs for _ in range(COPIES)]
    random.Random(7).shuffle(jobs)
    lanes = [jobs[i::CLIENTS] for i in range(CLIENTS)]

    with daemon_process(tmp_path, workers=3) as daemon:
        results: dict[int, list] = {}
        errors: list[BaseException] = []

        def client_lane(lane_id: int, lane: list[JobSpec]) -> None:
            try:
                with ServeClient(daemon.socket, timeout=600) as client:
                    results[lane_id] = list(
                        zip(lane, client.submit_many(lane, window=8))
                    )
            except BaseException as err:  # surfaced below
                errors.append(err)

        threads = [
            threading.Thread(target=client_lane, args=(i, lane))
            for i, lane in enumerate(lanes)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
            assert not thread.is_alive(), "soak client wedged"
        assert not errors, errors

        by_key: dict[str, str] = {}
        total = 0
        for lane in results.values():
            for spec, reply in lane:
                total += 1
                assert reply["ok"], reply
                body = canonical_json(deterministic_body(reply["result"]))
                # Byte-identical to the serial ground truth ...
                assert body == references[id(spec)], (
                    f"daemon diverged from serial verify for "
                    f"{spec.filename} (key {reply['key'][:12]})"
                )
                # ... and to every other reply for the same key, cached,
                # coalesced, or freshly explored alike.
                whole = canonical_json(reply["result"])
                assert by_key.setdefault(reply["key"], whole) == whole
        assert total == len(jobs)

        with ServeClient(daemon.socket) as client:
            stats = client.stats()
        jobs_stats = stats["jobs"]
        assert jobs_stats["submitted"] == len(jobs)
        # Exactly one exploration per distinct key: everything else was
        # answered from the cache or coalesced onto an in-flight job.
        assert jobs_stats["completed"] == len(unique_keys)
        assert jobs_stats["failed"] == 0 and jobs_stats["retried"] == 0
        assert jobs_stats["submitted"] == (
            jobs_stats["completed"] + jobs_stats["coalesced"]
            + stats["cache"]["hits"]
        )
        assert stats["cache"]["hits"] > 0  # the duplicates did hit


# -- hypothesis leg: every generated program, daemon vs serial -----------------


@pytest.fixture(scope="module")
def hypothesis_daemon(tmp_path_factory):
    with daemon_process(tmp_path_factory.mktemp("serve-hyp"),
                        workers=2) as daemon:
        yield daemon


@pytest.mark.slow
@settings(max_examples=40, deadline=None, derandomize=True)
@given(esp_programs())
def test_generated_programs_daemon_matches_serial(hypothesis_daemon, source):
    # Store backend varies with the program so the disk store sees the
    # generated corpus too (deterministic: keyed on the source hash).
    store = "disk" if len(source) % 2 else "collapse"
    spec = JobSpec(source=source, quiescence_ok=False, store=store)
    with ServeClient(hypothesis_daemon.socket) as client:
        reply = client.submit(spec, check=True)
    assert reply["ok"], reply
    assert canonical_json(deterministic_body(reply["result"])) \
        == canonical_json(serial_reference(spec))
