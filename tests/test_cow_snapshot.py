"""Copy-on-write snapshot correctness.

:meth:`Machine.snapshot` shares per-process and per-heap-object
records across snapshots and only re-records what a transition
touched; :meth:`Machine.restore` walks only the dirty set when
restoring the state it is already synchronised with.  The property
under test is that none of that sharing is observable: restoring a
snapshot always reproduces the exact canonical state it was taken
from, no matter which moves ran (and failed) in between.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import compile_source
from repro.errors import ESPError
from repro.runtime.machine import Machine
from repro.verify.state import canonical_state
from repro.vmmc.retransmission import build_machine, protocol_source
from tests.strategies import esp_programs


def _machine(source: str) -> Machine:
    return Machine(compile_source(source))


@settings(max_examples=20, deadline=None)
@given(esp_programs(), st.lists(st.integers(min_value=0, max_value=7),
                                min_size=1, max_size=12))
def test_restore_snapshot_is_identity_along_random_walks(source, choices):
    # Walk a random path through the state space; at every step the
    # snapshot taken *before* applying a move must restore to exactly
    # the canonical state observed at snapshot time — including after
    # moves that raise (assertion failures leave partial mutations the
    # restore has to undo).
    machine = _machine(source)
    try:
        machine.run_ready()
    except ESPError:
        return
    for choice in choices:
        before = canonical_state(machine)
        snap = machine.snapshot()
        moves = machine.enabled_moves()
        if not moves:
            break
        move = moves[choice % len(moves)]
        try:
            machine.apply(move)
            machine.run_ready()
        except ESPError:
            pass
        machine.restore(snap)
        assert canonical_state(machine) == before, source
        # Advance along the walk so later iterations test deeper states.
        try:
            machine.apply(move)
            machine.run_ready()
        except ESPError:
            machine.restore(snap)


@settings(max_examples=20, deadline=None)
@given(esp_programs())
def test_snapshot_reuses_untouched_process_records(source):
    # Two snapshots with no mutation in between must share every
    # process record by identity (that sharing is the whole point of
    # COW); after one move, records of untouched processes must still
    # be the same objects.
    machine = _machine(source)
    try:
        machine.run_ready()
    except ESPError:
        return
    first = machine.snapshot()
    second = machine.snapshot()
    assert all(a is b for a, b in zip(first[0], second[0]))
    moves = machine.enabled_moves()
    if not moves:
        return
    try:
        machine.apply(moves[0])
        machine.run_ready()
    except ESPError:
        return
    third = machine.snapshot()
    shared = sum(a is b for a, b in zip(first[0], third[0]))
    changed = len(first[0]) - shared
    # A rendezvous touches the two endpoint processes; everything else
    # must have been reused verbatim.
    assert changed <= 2, source


def test_mid_protocol_roundtrip_retransmission():
    # Drive the retransmission model a few transitions in, snapshot,
    # explore a detour, and restore: the canonical state and the set of
    # enabled moves must both come back exactly.
    machine = build_machine(protocol_source(window=2, messages=2))
    machine.run_ready()
    for _ in range(3):
        moves = machine.enabled_moves()
        if not moves:
            break
        machine.apply(moves[0])
        machine.run_ready()
    mid = canonical_state(machine)
    snap = machine.snapshot()
    described = [m.describe(machine) for m in machine.enabled_moves()]
    for index in range(len(described)):
        machine.restore(snap)
        machine.apply(machine.enabled_moves()[index])
        machine.run_ready()
    machine.restore(snap)
    assert canonical_state(machine) == mid
    assert [m.describe(machine) for m in machine.enabled_moves()] == described


def test_restore_foreign_snapshot_after_sync_switch():
    # Restoring snapshot A, mutating, then restoring snapshot B (taken
    # on a different branch) exercises the full-walk restore path with
    # record-identity skipping; both must reproduce their states.
    machine = build_machine(protocol_source(window=1, messages=2))
    machine.run_ready()
    root = machine.snapshot()
    states = []
    snaps = []
    for index in range(len(machine.enabled_moves())):
        machine.restore(root)
        machine.apply(machine.enabled_moves()[index])
        machine.run_ready()
        states.append(canonical_state(machine))
        snaps.append(machine.snapshot())
    for state, snap in zip(reversed(states), reversed(snaps)):
        machine.restore(snap)
        assert canonical_state(machine) == state


@settings(max_examples=15, deadline=None)
@given(esp_programs(), st.lists(st.integers(min_value=0, max_value=7),
                                min_size=1, max_size=10))
def test_portable_roundtrip_preserves_canonicalized_state(source, choices):
    # The parallel engine ships states between workers as portable
    # snapshots and keys them by the symmetry-canonical form, so the
    # canonical form must survive the round-trip: restoring a portable
    # snapshot on a *different* machine instance must canonicalize to
    # the same key the sender computed (else shard routing and dedup
    # would silently split symmetric states).
    from repro.verify.reduction import Reducer, parse_reduce

    machine = _machine(source)
    twin = _machine(source)
    reducer = Reducer(machine, parse_reduce("por,sym"), has_invariants=False)
    twin_reducer = Reducer(twin, parse_reduce("por,sym"), has_invariants=False)
    machine.run_ready()
    for choice in choices:
        moves = machine.enabled_moves()
        if not moves:
            break
        sent = reducer.canonical(machine)
        twin.restore_portable(machine.snapshot_portable())
        assert twin_reducer.canonical(twin) == sent
        assert canonical_state(twin) == canonical_state(machine)
        try:
            machine.apply(moves[choice % len(moves)])
            machine.run_ready()
        except ESPError:
            break
    sent = reducer.canonical(machine)
    twin.restore_portable(machine.snapshot_portable())
    assert twin_reducer.canonical(twin) == sent
