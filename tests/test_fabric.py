"""The fabric determinism + conformance battery (ISSUE 10).

Three contracts lock the N-node fabric down:

1. **Degenerate-case conformance** — at N=2 the fabric runs the legacy
   point-to-point :class:`~repro.sim.network.Wire` with one verified
   endpoint per node, and every per-node counter (reliability,
   delivered payloads, wire/fault stats, quanta, timers, heap
   occupancy, event count) matches ``run_over_faulty_link`` exactly.
2. **Determinism** — one ``(config, plan)`` pair yields byte-identical
   ``stats_json`` across repeated runs, at every node count, through
   the CLI included.
3. **Dispatch-mode independence** — batched dispatch may only change
   *when* convergence is observed (wall-clock fields); every counter
   is identical to per-event dispatch.

Plus the conservation property: under random topologies x random fault
plans, every injected payload is delivered exactly once and in order,
and the switch's buffer accounting reconciles to zero.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings

from repro.sim.fabric import FabricConfig, build_flows, run_fabric
from repro.sim.faults import FaultPlan
from repro.tools.cli import main as espc_main
from repro.vmmc.retransmission import run_over_faulty_link
from tests.strategies import fault_plans, topologies

_ALL_FAULTS = FaultPlan(seed=77, drop=0.05, dup=0.02, reorder=0.01,
                        delay=0.05, corrupt=0.01, dma_stall=0.01)

# Wall-clock report fields that legitimately depend on the dispatch
# mode (batched convergence detection may overshoot by one batch).
_TIME_FIELDS = ("time_us", "converged_at_us", "goodput_mb_s")


def _counters(report_dict: dict) -> dict:
    return {k: v for k, v in report_dict.items() if k not in _TIME_FIELDS}


# -- 1. the degenerate 2-node case reproduces the legacy harness ---------------


def _assert_matches_legacy(fabric, legacy) -> None:
    assert fabric.converged and legacy.converged
    assert fabric.events == legacy.events
    assert fabric.delivered[(1, 0)] == legacy.delivered[1]
    assert fabric.delivered[(0, 1)] == legacy.delivered[0]
    assert fabric.network == legacy.wire
    assert fabric.faults == legacy.faults
    for side in (0, 1):
        legacy_nic = legacy.nics[side]
        node = fabric.node_stats[side]
        (endpoint,) = node["endpoints"]
        assert endpoint["reliability"] == legacy_nic["reliability"]
        assert endpoint["sender_done"] == legacy_nic["sender_done"]
        assert endpoint["delivered"] == len(legacy.delivered[side])
        assert endpoint["heap_live_objects"] == legacy_nic["heap_live_objects"]
        assert endpoint["heap_live_baseline"] == legacy_nic["heap_live_baseline"]
        assert node["quanta"] == legacy_nic["quanta"]
        assert node["timers_set"] == legacy_nic["timers_set"]
        assert node["dma_stalls"] == legacy_nic["dma_stalls"]
        assert node["stray_packets"] == 0


def test_two_node_fabric_matches_legacy_wire_under_faults():
    legacy = run_over_faulty_link(messages=30, messages_back=10,
                                  plan=_ALL_FAULTS)
    fabric = run_fabric(
        FabricConfig(nodes=2, scenario="pairwise", messages=30,
                     messages_back=10),
        plan=_ALL_FAULTS,
    )
    _assert_matches_legacy(fabric, legacy)


def test_two_node_fabric_matches_legacy_per_event_including_clock():
    # In per-event dispatch even the wall clock is identical: the
    # fabric harness is the legacy harness at N=2.
    legacy = run_over_faulty_link(messages=20, messages_back=5,
                                  plan=_ALL_FAULTS)
    fabric = run_fabric(
        FabricConfig(nodes=2, scenario="pairwise", messages=20,
                     messages_back=5, dispatch="per-event"),
        plan=_ALL_FAULTS,
    )
    _assert_matches_legacy(fabric, legacy)
    assert fabric.time_us == legacy.time_us
    assert fabric.converged_at_us < legacy.time_us


@pytest.mark.slow
def test_two_node_fabric_matches_legacy_soak():
    """The bidirectional lossy soak, run through both harnesses: the
    fabric must reproduce the legacy counters payload for payload."""
    plan = FaultPlan(seed=42, drop=0.05)
    legacy = run_over_faulty_link(messages=1500, messages_back=1500,
                                  plan=plan)
    fabric = run_fabric(
        FabricConfig(nodes=2, scenario="pairwise", messages=1500,
                     messages_back=1500),
        plan=plan,
    )
    _assert_matches_legacy(fabric, legacy)
    for side in (0, 1):
        rel = fabric.node_stats[side]["endpoints"][0]["reliability"]
        assert rel["data_sent"] == 1500
        assert rel["delivered"] == 1500
        assert rel["retransmissions"] > 0


# -- 2. determinism: same seed, byte-identical stats ----------------------------


@pytest.mark.parametrize("nodes", [2, 4, 8, 16])
def test_same_seed_byte_identical_stats_across_node_counts(nodes):
    plan = FaultPlan(seed=9, drop=0.03, dup=0.01, delay=0.02)
    scenario = "pairwise" if nodes == 2 else "incast"
    config = FabricConfig(nodes=nodes, scenario=scenario, messages=3)
    first = run_fabric(config, plan=plan)
    second = run_fabric(config, plan=plan)
    assert first.converged, first.summary()
    assert first.stats_json() == second.stats_json()


def test_different_seeds_diverge():
    plan_a = FaultPlan(seed=9, drop=0.05, delay=0.05)
    plan_b = FaultPlan(seed=10, drop=0.05, delay=0.05)
    config = FabricConfig(nodes=4, scenario="incast", messages=4)
    assert (run_fabric(config, plan=plan_a).stats_json()
            != run_fabric(config, plan=plan_b).stats_json())


def test_cli_stats_json_byte_identical(capsys):
    argv = ["sim", "--topology", "4", "--scenario", "incast", "--seed", "5",
            "--messages", "3", "--faults", "9:drop=0.03,delay=0.02",
            "--stats-json"]
    assert espc_main(argv) == 0
    first = capsys.readouterr().out
    assert espc_main(argv) == 0
    second = capsys.readouterr().out
    assert first == second
    payload = json.loads(first)
    assert payload["converged"] and payload["exactly_once_in_order"]
    assert payload["nodes"] == 4 and payload["scenario"] == "incast"


# -- 3. dispatch-mode independence ----------------------------------------------


@pytest.mark.parametrize("scenario,nodes", [("incast", 6), ("churn", 4)])
def test_batched_and_per_event_agree_on_every_counter(scenario, nodes):
    plan = FaultPlan(seed=13, drop=0.04, dup=0.02, corrupt=0.01)
    base = FabricConfig(nodes=nodes, scenario=scenario, messages=3, seed=2)
    batched = run_fabric(base, plan=plan)
    per_event = run_fabric(dataclasses.replace(base, dispatch="per-event"),
                           plan=plan)
    assert batched.converged and per_event.converged
    assert batched.events == per_event.events
    batched_dict = _counters(batched.as_dict())
    per_event_dict = _counters(per_event.as_dict())
    batched_dict.pop("dispatch")
    per_event_dict.pop("dispatch")
    assert batched_dict == per_event_dict


# -- scenario families converge cleanly ------------------------------------------


@pytest.mark.parametrize("scenario,nodes", [
    ("pairwise", 6),
    ("all_to_all", 4),
    ("hot_receiver", 5),
    ("churn", 6),
])
def test_scenarios_deliver_exactly_once_in_order(scenario, nodes):
    report = run_fabric(
        FabricConfig(nodes=nodes, scenario=scenario, messages=3,
                     messages_back=2, seed=4),
        plan=FaultPlan(seed=21, drop=0.03, dup=0.01),
    )
    assert report.converged, report.summary()
    assert report.exactly_once_in_order()
    for node in report.node_stats:
        assert node["stray_packets"] == 0
        for endpoint in node["endpoints"]:
            assert endpoint["heap_live_objects"] == endpoint["heap_live_baseline"]


def test_build_flows_shapes():
    assert len(build_flows(FabricConfig(nodes=8, scenario="incast"))) == 7
    assert len(build_flows(FabricConfig(nodes=8, scenario="all_to_all"))) == 56
    assert len(build_flows(FabricConfig(nodes=6, scenario="pairwise"))) == 3
    hot = build_flows(FabricConfig(nodes=6, scenario="hot_receiver"))
    assert len(hot) == 10  # 5 incast + 5-node ring
    churn = build_flows(FabricConfig(nodes=6, scenario="churn", seed=1))
    assert len(churn) > 3  # pairwise base + extra staggered flows
    assert any(f.start_us > 0 for f in churn)
    # Flow selection is seed-deterministic.
    assert churn == build_flows(FabricConfig(nodes=6, scenario="churn", seed=1))
    assert churn != build_flows(FabricConfig(nodes=6, scenario="churn", seed=2))


# -- the conservation property ---------------------------------------------------


@given(topologies(), fault_plans())
@settings(max_examples=15, deadline=None)
def test_conservation_under_random_topologies(config, plan):
    report = run_fabric(config, plan=plan)
    assert report.converged, report.summary()
    # Every injected payload arrived exactly once, in order.
    assert report.exactly_once_in_order()
    network = report.network
    if "switch" in network:
        switch = network["switch"]
        # Everything routed was either queued for egress or dropped to
        # congestion — and the buffer accounting returned to zero.
        enqueued = sum(network[f"down{i}"]["enqueued"]
                       for i in range(config.nodes))
        sent = sum(network[f"down{i}"]["sent"] for i in range(config.nodes))
        assert switch["routed"] == enqueued + switch["congestion_drops"]
        assert enqueued == sent  # nothing left inside the switch
        assert switch["buffer_used"] == 0
        assert switch["misrouted"] == 0
    # No ESP heap leaks at quiescence on any node.
    for node in report.node_stats:
        for endpoint in node["endpoints"]:
            assert endpoint["heap_live_objects"] == endpoint["heap_live_baseline"]


# -- the 64-node soak -------------------------------------------------------------


@pytest.mark.slow
def test_soak_64_node_incast_under_loss():
    """The acceptance scenario at full width: 64 nodes, lossy links,
    congestion at the hot port — converge, deliver exactly once, and
    reconcile the switch accounting."""
    report = run_fabric(
        FabricConfig(nodes=64, scenario="incast", messages=8,
                     seed=7),
        plan=FaultPlan(seed=42, drop=0.03, delay=0.02),
    )
    assert report.converged, report.summary()
    assert report.exactly_once_in_order()
    switch = report.network["switch"]
    assert switch["buffer_used"] == 0
    assert switch["routed"] > 0
    # Determinism holds at width: a second run is byte-identical.
    again = run_fabric(
        FabricConfig(nodes=64, scenario="incast", messages=8, seed=7),
        plan=FaultPlan(seed=42, drop=0.03, delay=0.02),
    )
    assert report.stats_json() == again.stats_json()
