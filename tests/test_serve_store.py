"""Crash-safety battery for the disk-backed visited-state store
(:mod:`repro.serve.store`).

The store's contract: membership is *exact* (a digest collision can
cost a read, never a false "visited" hit), and any crash — torn row,
half-created segment, SIGKILL mid-append — leaves at worst a
truncated-but-sound prefix after recovery.  A false hit here is the
verifier silently skipping reachable states, the worst failure mode a
model checker has, so every corruption shape gets its own test, ending
with a real SIGKILL of a real appender and of a daemon worker mid-job.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import time

import pytest

from repro.runtime.machine import Machine
from repro.serve.keys import JobSpec
from repro.serve.store import CHECK_BYTES, HEADER_SIZE, DiskKeySet, \
    DiskVisitedStore
from repro.serve.worker import deterministic_body
from repro.verify.environment import default_verification_bridges
from repro.verify.explorer import Explorer
from repro.vmmc.retransmission import protocol_source
from tests.serve_util import canonical_json, chain_source, serial_reference

from repro import compile_source


def _key(i: int, width: int = 16) -> bytes:
    return i.to_bytes(width, "little")


# -- the set surface -----------------------------------------------------------


def test_roundtrip_and_duplicates(tmp_path):
    store = DiskKeySet(tmp_path, rows_per_segment=8)
    for i in range(20):  # crosses two segment boundaries
        assert _key(i) not in store
        store.add(_key(i))
        store.add(_key(i))  # idempotent
        assert _key(i) in store
    assert len(store) == 20
    assert _key(99) not in store
    assert len(list(tmp_path.glob("seg-*.esv"))) == 3
    store.close()


def test_width_is_pinned_by_first_key(tmp_path):
    store = DiskKeySet(tmp_path)
    store.add(_key(1, width=8))
    with pytest.raises(ValueError, match="width"):
        store.add(_key(1, width=16))
    store.close()


def test_reopen_recovers_everything(tmp_path):
    store = DiskKeySet(tmp_path, rows_per_segment=8)
    for i in range(13):
        store.add(_key(i))
    store.flush()
    store.close()

    reopened = DiskKeySet(tmp_path)
    assert len(reopened) == 13
    assert reopened.recovered_rows == 13
    assert reopened.rows_per_segment == 8  # adopted from the header
    for i in range(13):
        assert _key(i) in reopened
    assert _key(13) not in reopened  # no false hit from zeroed tail
    reopened.add(_key(13))  # appending after recovery keeps working
    assert len(reopened) == 14
    reopened.close()


# -- corruption shapes ---------------------------------------------------------


def test_torn_row_is_truncated(tmp_path):
    store = DiskKeySet(tmp_path, rows_per_segment=8)
    for i in range(5):
        store.add(_key(i))
    store.flush()
    row_bytes = store.row_bytes
    store.close()

    # Tear row 3 the way a crash mid-append would: some key bytes
    # land, the checksum does not.
    path = sorted(tmp_path.glob("seg-*.esv"))[0]
    offset = HEADER_SIZE + 3 * (row_bytes + CHECK_BYTES)
    with open(path, "r+b") as f:
        f.seek(offset)
        f.write(b"\xff" * (row_bytes // 2))

    reopened = DiskKeySet(tmp_path)
    assert len(reopened) == 3           # the sound prefix
    assert reopened.truncated_rows == 5  # rows 3..7 zeroed
    for i in range(3):
        assert _key(i) in reopened
    # Rows 3 and 4 were written but fall after the tear: they MUST
    # read as unvisited (false hits are the one unforgivable failure).
    assert _key(3) not in reopened
    assert _key(4) not in reopened
    reopened.close()


def test_segments_after_a_hole_are_stale(tmp_path):
    store = DiskKeySet(tmp_path, rows_per_segment=4)
    for i in range(12):  # three full segments
        store.add(_key(i))
    store.flush()
    row_bytes = store.row_bytes
    store.close()

    # Corrupt the *middle* segment's first row: segment 1 truncates to
    # zero rows, so segment 2 is unreachable and must be deleted.
    middle = sorted(tmp_path.glob("seg-*.esv"))[1]
    with open(middle, "r+b") as f:
        f.seek(HEADER_SIZE + row_bytes)  # the checksum of row 0
        f.write(b"\x00" * CHECK_BYTES)

    reopened = DiskKeySet(tmp_path)
    assert len(reopened) == 4
    assert reopened.stale_segments == 1
    for i in range(4):
        assert _key(i) in reopened
    for i in range(4, 12):
        assert _key(i) not in reopened
    assert len(list(tmp_path.glob("seg-*.esv"))) == 2
    reopened.close()


def test_foreign_first_segment_drops_the_store(tmp_path):
    (tmp_path / "seg-000000.esv").write_bytes(b"not a segment at all")
    (tmp_path / "seg-000001.esv").write_bytes(b"also garbage")
    store = DiskKeySet(tmp_path)
    assert len(store) == 0
    assert store.stale_segments == 2
    assert list(tmp_path.glob("seg-*.esv")) == []
    store.add(_key(1))
    assert _key(1) in store
    store.close()


def test_half_created_segment_grows_back_zeroed(tmp_path):
    store = DiskKeySet(tmp_path, rows_per_segment=8)
    for i in range(3):
        store.add(_key(i))
    store.flush()
    store.close()
    # A crash between create and truncate-to-size leaves a short file.
    path = sorted(tmp_path.glob("seg-*.esv"))[0]
    full = path.stat().st_size
    with open(path, "r+b") as f:
        f.truncate(full - 17)
    reopened = DiskKeySet(tmp_path)
    # Row 7's tail was cut; rows 0..6 can still checksum — but only
    # 0..2 were ever written, so exactly those recover.
    assert len(reopened) == 3
    assert path.stat().st_size == full
    reopened.close()


# -- SIGKILL a real appender ---------------------------------------------------


def _appender(directory: str) -> None:
    store = DiskKeySet(directory, rows_per_segment=64)
    i = 0
    while True:  # append forever; flush sometimes; die by SIGKILL
        store.add(_key(i))
        if i % 16 == 0:
            store.flush()
        i += 1


@pytest.mark.slow
def test_sigkill_mid_append_recovers_a_sound_prefix(tmp_path):
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=_appender, args=(str(tmp_path),))
    proc.start()
    # Let it write a few segments' worth, then pull the plug.
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline:
        if len(list(tmp_path.glob("seg-*.esv"))) >= 3:
            break
        time.sleep(0.01)
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(10)

    reopened = DiskKeySet(tmp_path)
    n = len(reopened)
    assert n > 0
    # The recovered rows are exactly the prefix 0..n-1 of the appended
    # sequence: membership for each, no false hit past the end, and the
    # digest index agrees with the mmap contents.
    for i in range(n):
        assert _key(i) in reopened, f"row {i} lost from a sound prefix"
    for probe in range(n, n + 64):
        assert _key(probe) not in reopened, \
            f"false 'visited' hit for never-recovered row {probe}"
    reopened.add(_key(n))  # the store stays appendable after recovery
    assert len(reopened) == n + 1
    reopened.close()


# -- exactness under the explorer ----------------------------------------------


def _explore(source: str, store):
    program = compile_source(source)
    machine = Machine(program,
                      externals=default_verification_bridges(program))
    return Explorer(machine, quiescence_ok=False, stop_at_first=False,
                    store=store).explore()


@pytest.mark.parametrize("source", [
    chain_source(4),
    chain_source(3, assert_bound=1),
    protocol_source(2, 3),
])
def test_disk_store_is_exact_vs_collapse(tmp_path, source):
    plain = _explore(source, "collapse")
    disk = _explore(source, DiskVisitedStore(tmp_path / "job"))
    assert disk.states == plain.states
    assert disk.transitions == plain.transitions
    assert disk.ok == plain.ok
    assert [str(v) for v in disk.violations] == \
        [str(v) for v in plain.violations]


# -- the daemon-level crash: SIGKILL a worker mid-job --------------------------


@pytest.mark.slow
def test_worker_sigkill_mid_job_retries_cleanly(tmp_path):
    from repro.serve.client import ServeClient
    from tests.serve_util import daemon_process

    # Full exploration (~2s, no early stop): a wide-open window to
    # SIGKILL the worker while segments are being appended.
    spec = JobSpec(source=protocol_source(4, 5), store="disk")
    with daemon_process(tmp_path, workers=1) as daemon:
        with ServeClient(daemon.socket) as client:
            victim = client.stats()["workers"]["pids"][0]
            import threading

            outcome = {}

            def submit():
                with ServeClient(daemon.socket) as submitter:
                    outcome["reply"] = submitter.submit(spec)

            thread = threading.Thread(target=submit)
            thread.start()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = client.stats()
                if stats["inflight"] == 1 and stats["workers"]["idle"] == 0:
                    break
                time.sleep(0.02)
            time.sleep(0.3)  # let the disk store write some segments
            os.kill(victim, signal.SIGKILL)
            thread.join(timeout=120)
            assert not thread.is_alive()

            reply = outcome["reply"]
            assert reply["ok"], reply
            # The retry produced the exact serial answer, on attempt 1,
            # and the recovery scan of the dead attempt's segments ran.
            assert reply["worker"]["attempt"] == 1
            recovery = reply["worker"]["store_recovery"]
            assert recovery is not None
            assert recovery["truncated_rows"] >= 0  # scan completed
            assert canonical_json(deterministic_body(reply["result"])) \
                == canonical_json(serial_reference(spec))
            stats = client.stats()
            assert stats["jobs"]["retried"] == 1
            assert stats["workers"]["respawned"] == 1
            assert stats["workers"]["alive"] == 1
