"""Unit tests for the ESP type checker."""

import pytest

from repro.errors import TypeError_
from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.typecheck import check, deep_set_mutability
from repro.lang.types import ArrayType, BOOL, INT, RecordType, UnionType


def check_program(text):
    return check(parse(text))


def check_body(body, prelude=""):
    return check_program(prelude + "\nprocess p { " + body + " }")


PRELUDE = """
type sendT = record of { dest: int, vAddr: int, size: int}
type updateT = record of { vAddr: int, pAddr: int}
type userT = union of { send: sendT, update: updateT }
channel intC: int
channel userC: userT
"""


# -- type declarations ----------------------------------------------------


def test_type_alias_resolution():
    checked = check_program(PRELUDE + "process p { skip; }")
    send = checked.types["sendT"]
    assert isinstance(send, RecordType)
    assert send.field_names() == ("dest", "vAddr", "size")
    user = checked.types["userT"]
    assert isinstance(user, UnionType)
    assert user.tag_type("send") == send


def test_forward_type_reference_allowed():
    checked = check_program(
        "type a = record of { x: b } type b = record of { y: int } process p { skip; }"
    )
    assert isinstance(checked.types["a"].field_type("x"), RecordType)


def test_recursive_type_rejected():
    with pytest.raises(TypeError_, match="recursive"):
        check_program("type t = record of { next: t } process p { skip; }")


def test_mutually_recursive_types_rejected():
    with pytest.raises(TypeError_, match="recursive"):
        check_program(
            "type a = record of { x: b } type b = record of { y: a } process p { skip; }"
        )


def test_duplicate_field_names_rejected():
    with pytest.raises(TypeError_, match="duplicate"):
        check_program("type t = record of { x: int, x: int } process p { skip; }")


def test_mutable_on_base_type_rejected():
    with pytest.raises(TypeError_, match="#"):
        check_program("type t = #int process p { skip; }")


# -- constants ---------------------------------------------------------------


def test_const_evaluation():
    checked = check_program("const A = 3 const B = A * 4 + 1 process p { skip; }")
    assert checked.consts == {"A": 3, "B": 13}


def test_const_division_by_zero_rejected():
    with pytest.raises(TypeError_, match="division by zero"):
        check_program("const A = 1 / 0 process p { skip; }")


def test_const_non_constant_rejected():
    with pytest.raises(TypeError_, match="constant"):
        check_program("const A = x + 1 process p { skip; }")


# -- variables and inference ---------------------------------------------------


def test_declared_and_inferred_types():
    checked = check_body("$i: int = 7; i = 45; $j = 36; $b = true;")
    types = checked.processes[0].locals
    assert set(types.values()) == {INT, BOOL}


def test_type_annotation_mismatch_rejected():
    with pytest.raises(TypeError_, match="mismatch"):
        check_body("$i: int = true;")


def test_unknown_variable_rejected():
    with pytest.raises(TypeError_, match="unknown variable"):
        check_body("$i = j;")


def test_duplicate_declaration_in_scope_rejected():
    with pytest.raises(TypeError_, match="already declared"):
        check_body("$i = 1; $i = 2;")


def test_shadowing_in_nested_scope_allowed():
    check_body("$i = 1; if (i > 0) { $i = 2; print(i); }")


def test_block_scoping_variables_not_visible_outside():
    with pytest.raises(TypeError_, match="unknown variable"):
        check_body("if (true) { $i = 1; } print(i);")


def test_assignment_type_must_match():
    with pytest.raises(TypeError_, match="mismatch"):
        check_body("$i = 1; i = true;")


# -- aggregates ------------------------------------------------------------------


def test_record_literal_against_annotation():
    check_body("$sr: sendT = { 7, 54677, 1024};", PRELUDE)


def test_record_literal_arity_mismatch_rejected():
    with pytest.raises(TypeError_, match="components"):
        check_body("$sr: sendT = { 7, 54677};", PRELUDE)


def test_record_literal_needs_context():
    with pytest.raises(TypeError_, match="cannot infer"):
        check_body("$x = {1, 2};")


def test_union_literal_and_unknown_tag():
    check_body("$u: userT = { update |> { 5, 6}};", PRELUDE)
    with pytest.raises(TypeError_, match="no tag"):
        check_body("$u: userT = { bogus |> 5};", PRELUDE)


def test_union_literal_from_existing_record():
    check_body("$sr: sendT = { 7, 5, 10}; $u: userT = { send |> sr};", PRELUDE)


def test_array_fill_infers_element_type():
    checked = check_body("$a = #{ 8 -> 0 };")
    (t,) = checked.processes[0].locals.values()
    assert t == ArrayType(INT, mutable=True)


def test_array_literal_homogeneous():
    with pytest.raises(TypeError_, match="mismatch"):
        check_body("$a = [1, true];")


def test_indexing_and_field_access():
    check_body("$a = #{ 4 -> 0 }; $x = a[2]; a[1] = x + 1;")
    check_body("$r: #record of { x: int } = #{ 1 }; r.x = 2; $y = r.x;")


def test_index_requires_int():
    with pytest.raises(TypeError_, match="index must be int"):
        check_body("$a = #{ 4 -> 0 }; $x = a[true];")


def test_assignment_into_immutable_array_rejected():
    with pytest.raises(TypeError_, match="immutable"):
        check_body("$a: array of int = { 4 -> 0 }; a[0] = 1;")


def test_assignment_into_immutable_record_rejected():
    with pytest.raises(TypeError_, match="immutable"):
        check_body("$r: record of { x: int } = { 1 }; r.x = 2;")


def test_field_access_on_union_rejected():
    with pytest.raises(TypeError_, match="pattern matching"):
        check_body("$u: userT = { update |> { 1, 2}}; $x = u.update;", PRELUDE)


def test_mutability_mismatch_in_literal_rejected():
    with pytest.raises(TypeError_, match="immutable"):
        check_body("$a: #array of int = { 4 -> 0 };")


def test_cast_flips_mutability_deeply():
    checked = check_body(
        "$a = #{ 4 -> 0 }; $b = cast(a); $c = cast(b);"
    )
    types = checked.processes[0].locals
    assert types["a.0"] == ArrayType(INT, mutable=True)
    assert types["b.1"] == ArrayType(INT, mutable=False)
    assert types["c.2"] == ArrayType(INT, mutable=True)


def test_cast_on_base_type_rejected():
    with pytest.raises(TypeError_, match="cast"):
        check_body("$x = cast(5);")


def test_deep_set_mutability_helper():
    t = RecordType((("a", ArrayType(INT)),))
    mt = deep_set_mutability(t, True)
    assert mt.mutable and mt.field_type("a").mutable


# -- operators ----------------------------------------------------------------


def test_arithmetic_comparison_logic():
    check_body("$x = (1 + 2 * 3) % 4; $b = x < 5 && !(x == 3) || false;")


def test_bitwise_and_shifts():
    check_body("$x = (1 << 4) | (255 & 0x0f) ^ (8 >> 2);")


def test_logic_on_ints_rejected():
    with pytest.raises(TypeError_, match="bool"):
        check_body("$x = 1 && 2;")


def test_aggregate_equality_rejected():
    with pytest.raises(TypeError_, match="aggregate"):
        check_body("$a = #{4 -> 0}; $b = #{4 -> 0}; $e = a == b;")


# -- channels -----------------------------------------------------------------


def test_in_out_statement_types():
    check_body("out( intC, 5); in( intC, $x); print(x);", PRELUDE)


def test_out_wrong_type_rejected():
    with pytest.raises(TypeError_, match="mismatch"):
        check_body("out( intC, true);", PRELUDE)


def test_unknown_channel_rejected():
    with pytest.raises(TypeError_, match="unknown channel"):
        check_body("out( nosuch, 5);")


def test_channel_with_mutable_type_rejected():
    with pytest.raises(TypeError_, match="mutable"):
        check_program("channel bad: #array of int process p { skip; }")


def test_process_cannot_write_external_writer_channel():
    prog = PRELUDE + """
external interface userReq(out userC) {
    Send({ send |> { $d, $v, $s }}),
    Update({ update |> $n })
};
process p { out( userC, { update |> { 1, 2}}); }
"""
    with pytest.raises(TypeError_, match="external writer"):
        check_program(prog)


def test_process_cannot_read_external_reader_channel():
    prog = PRELUDE + """
external interface notify(in intC) { Notify($v) };
process p { in( intC, $x); print(x); }
"""
    with pytest.raises(TypeError_, match="external reader"):
        check_program(prog)


def test_channel_cannot_have_two_external_sides():
    prog = PRELUDE + """
external interface a(in intC) { A($v) };
external interface b(out intC) { B($v) };
process p { skip; }
"""
    with pytest.raises(TypeError_, match="external side"):
        check_program(prog)


# -- patterns in statements -----------------------------------------------------


def test_in_pattern_binds_variables():
    checked = check_body(
        "in( userC, { send |> { $dest, $vAddr, $size}}); print(dest + vAddr + size);",
        PRELUDE,
    )
    assert len(checked.processes[0].locals) == 3


def test_in_pattern_store_into_array_element():
    check_body("$q = #{ 4 -> 0 }; in( intC, q[0]);", PRELUDE)


def test_match_statement_destructures():
    check_body(
        "$u: userT = { send |> { 5, 10000, 512}};"
        "{ send |> { $dest, $vAddr, $size}}: userT = u;"
        "print(dest, vAddr, size);",
        PRELUDE,
    )


def test_pattern_arity_mismatch_rejected():
    with pytest.raises(TypeError_, match="components"):
        check_body("in( userC, { send |> { $a, $b }});", PRELUDE)


def test_pattern_unknown_tag_rejected():
    with pytest.raises(TypeError_, match="no tag"):
        check_body("in( userC, { bogus |> $x });", PRELUDE)


# -- statements -------------------------------------------------------------------


def test_if_while_conditions_must_be_bool():
    with pytest.raises(TypeError_, match="bool"):
        check_body("if (1) { skip; }")
    with pytest.raises(TypeError_, match="bool"):
        check_body("while (1) { skip; }")


def test_break_outside_loop_rejected():
    with pytest.raises(TypeError_, match="break"):
        check_body("break;")


def test_break_inside_loop_ok():
    check_body("while (true) { break; }")


def test_link_unlink_require_heap_objects():
    check_body("$a = #{4 -> 0}; link(a); unlink(a);")
    with pytest.raises(TypeError_, match="heap objects"):
        check_body("$x = 5; link(x);")


def test_assert_requires_bool():
    with pytest.raises(TypeError_, match="bool"):
        check_body("assert(5);")


def test_alt_guard_must_be_bool():
    with pytest.raises(TypeError_, match="guard"):
        check_body("alt { case( 1, in( intC, $x)) { skip; } }", PRELUDE)


def test_process_id_is_int():
    check_body("$x = @ + 1;", PRELUDE)


def test_duplicate_process_rejected():
    with pytest.raises(TypeError_, match="duplicate process"):
        check_program("process p { skip; } process p { skip; }")


def test_process_ids_are_assigned_in_order():
    checked = check_program("process a { skip; } process b { skip; }")
    assert [(p.name, p.pid) for p in checked.processes] == [("a", 0), ("b", 1)]
