"""Unit tests for the allocation-avoidance optimizations (§4.2, §6.1):
message-record fusion conditions and cast elision."""

from repro.api import compile_source_with_stats
from repro.ir import OptLevel
from repro.ir import nodes as ir


def fused_channels(src):
    program, stats, _ = compile_source_with_stats(src)
    fused = set()
    for proc in program.processes:
        for instr in proc.instrs:
            if isinstance(instr, ir.Out) and instr.fused:
                fused.add(instr.channel)
            elif isinstance(instr, ir.Alt):
                for arm in instr.arms:
                    if arm.kind == "out" and arm.fused:
                        fused.add(arm.channel)
    return fused, stats


def test_fusion_when_all_receivers_destructure():
    src = """
channel pairC: record of { a: int, b: int }
channel outC: int
external interface drain(in outC) { D($v) };
process p { out( pairC, { 1, 2 }); }
process q { in( pairC, { $a, $b }); out( outC, a + b); }
"""
    fused, stats = fused_channels(src)
    assert "pairC" in fused
    assert stats.outs_fused == 1


def test_no_fusion_when_receiver_binds_whole_record():
    src = """
channel pairC: record of { a: int, b: int }
channel outC: int
external interface drain(in outC) { D($v) };
process p { out( pairC, { 1, 2 }); }
process q { in( pairC, $whole); out( outC, whole.a); unlink( whole); }
"""
    fused, _ = fused_channels(src)
    assert "pairC" not in fused


def test_no_fusion_when_some_sender_passes_a_variable():
    # All-or-nothing per channel: a non-literal send site keeps the
    # whole channel unfused so receivers see one message form.
    src = """
type pairT = record of { a: int, b: int }
channel pairC: pairT
channel outC: int
external interface drain(in outC) { D($v) };
process p1 { out( pairC, { 1, 2 }); }
process p2 { $m: pairT = { 3, 4 }; out( pairC, m); unlink( m); }
process q {
    $n = 0;
    while (n < 2) { in( pairC, { $a, $b }); out( outC, a + b); n = n + 1; }
}
"""
    fused, _ = fused_channels(src)
    assert "pairC" not in fused


def test_no_fusion_on_external_channels():
    src = """
channel pairC: record of { a: int, b: int }
external interface drain(in pairC) { D($a, $b) };
process p { out( pairC, { 1, 2 }); }
"""
    fused, _ = fused_channels(src)
    assert "pairC" not in fused


def test_no_fusion_for_mutable_literal():
    # (Mutable data cannot cross channels anyway — the checker rejects
    # it — so the fusion code never sees it; this documents the guard.)
    src = """
channel pairC: record of { a: int, b: int }
channel outC: int
external interface drain(in outC) { D($v) };
process p { out( pairC, { 5, 6 }); }
process q { in( pairC, { $a, $b }); out( outC, a * b); }
"""
    fused, stats = fused_channels(src)
    assert "pairC" in fused  # the immutable literal fuses normally


def test_cast_elision_marks_dead_source():
    src = """
channel outC: int
external interface drain(in outC) { D($v) };
process p {
    $m = #{ 2 -> 1 };
    $frozen = cast(m);
    out( outC, frozen[0]);
    unlink( frozen);
}
"""
    _, stats, _ = compile_source_with_stats(src)
    assert stats.casts_elided == 1


def test_cast_not_elided_when_source_live():
    src = """
channel outC: record of { a: int, b: int }
external interface drain(in outC) { D($a, $b) };
process p {
    $m = #{ 2 -> 1 };
    $frozen = cast(m);
    m[0] = 9;
    out( outC, { m[0], frozen[0] });
    unlink( m);
    unlink( frozen);
}
"""
    _, stats, _ = compile_source_with_stats(src)
    assert stats.casts_elided == 0


def test_opt_level_none_fuses_nothing():
    src = """
channel pairC: record of { a: int, b: int }
channel outC: int
external interface drain(in outC) { D($v) };
process p { out( pairC, { 1, 2 }); }
process q { in( pairC, { $a, $b }); out( outC, a + b); }
"""
    program, stats, _ = compile_source_with_stats(src, opt_level=OptLevel.NONE)
    assert stats.outs_fused == 0
    for proc in program.processes:
        for instr in proc.instrs:
            if isinstance(instr, ir.Out):
                assert not instr.fused
