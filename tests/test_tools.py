"""Tests for the espc CLI and the LoC accounting tools."""

import pytest

from repro.tools.cli import main
from repro.tools.loc import (
    count_python,
    count_source,
    split_esp_declarations,
    vmmc_code_size_comparison,
)

GOOD = """
channel c: int
process p { out( c, 41); }
process q { in( c, $x); print(x + 1); }
"""

BAD_SYNTAX = "process p { out( c, ; }"
BAD_TYPES = "channel c: int process p { out( c, true); }"


@pytest.fixture
def esp_file(tmp_path):
    path = tmp_path / "pgm.esp"
    path.write_text(GOOD)
    return str(path)


# -- espc subcommands ----------------------------------------------------------


def test_check_ok(esp_file, capsys):
    assert main(["check", esp_file]) == 0
    out = capsys.readouterr().out
    assert "2 process(es)" in out


def test_check_reports_syntax_error(tmp_path, capsys):
    path = tmp_path / "bad.esp"
    path.write_text(BAD_SYNTAX)
    assert main(["check", str(path)]) == 2
    assert "error" in capsys.readouterr().err


def test_check_reports_type_error(tmp_path, capsys):
    path = tmp_path / "bad.esp"
    path.write_text(BAD_TYPES)
    assert main(["check", str(path)]) == 2
    assert "mismatch" in capsys.readouterr().err


def test_errors_carry_caret_diagnostics(tmp_path, capsys):
    path = tmp_path / "bad.esp"
    path.write_text("channel c: int\nprocess p { out( c, true); }\n")
    assert main(["check", str(path)]) == 2
    err = capsys.readouterr().err
    assert "^" in err                       # caret marker
    assert "out( c, true);" in err          # offending line shown


def test_emit_c_writes_file(esp_file, tmp_path, capsys):
    out_path = tmp_path / "pgm.c"
    assert main(["emit-c", esp_file, "-o", str(out_path)]) == 0
    text = out_path.read_text()
    assert "esp_step_0" in text
    assert "esp_main_loop" in text


def test_emit_c_stdout(esp_file, capsys):
    assert main(["emit-c", esp_file]) == 0
    assert "esp_alloc" in capsys.readouterr().out


def test_emit_spin_writes_file(esp_file, tmp_path):
    out_path = tmp_path / "pgm.pml"
    assert main(["emit-spin", esp_file, "-o", str(out_path)]) == 0
    assert "proctype p()" in out_path.read_text()


def test_run_executes(esp_file, capsys):
    assert main(["run", esp_file]) == 0
    out = capsys.readouterr().out
    assert "q: 42" in out
    assert "transfer" in out


def test_verify_whole_program(esp_file, capsys):
    assert main(["verify", esp_file]) == 0
    assert "states" in capsys.readouterr().out


def test_verify_finds_violation(tmp_path, capsys):
    path = tmp_path / "bad.esp"
    path.write_text("""
channel c: int
process p { out( c, 1); assert(false); }
process q { in( c, $x); print(x); }
""")
    assert main(["verify", str(path)]) == 1
    assert "assertion" in capsys.readouterr().out


def test_verify_process_memory_safety(tmp_path, capsys):
    path = tmp_path / "worker.esp"
    path.write_text("""
type dataT = array of int
channel inC: dataT
channel outC: int
process worker { while (true) { in( inC, $d); out( outC, d[0]); unlink( d); } }
process peer { out( inC, { 1 -> 0 }); in( outC, $x); print(x); }
""")
    assert main(["verify", str(path), "--process", "worker"]) == 0
    assert "memory safety of 'worker'" in capsys.readouterr().out


def test_stats(esp_file, capsys):
    assert main(["stats", esp_file]) == 0
    out = capsys.readouterr().out
    assert "folds" in out
    assert "instructions" in out


def test_missing_file(capsys):
    assert main(["check", "/nonexistent.esp"]) == 2


# -- LoC accounting -----------------------------------------------------------------


def test_count_source_comments_blanks():
    report = count_source("code();\n// c\n\n/* a\nb */\nmore();")
    assert (report.code, report.comment, report.blank) == (2, 3, 1)


def test_count_python_docstrings():
    report = count_python('"""doc\nstring"""\nx = 1\n# note\n')
    assert report.code == 1
    assert report.comment == 3


def test_split_declarations_vs_process_code():
    decl, proc = split_esp_declarations(
        "type t = int\nchannel c: int\nprocess p {\n$x = 1;\n}\n"
    )
    assert decl == 2
    assert proc == 3


def test_vmmc_comparison_structure():
    comparison = vmmc_code_size_comparison()
    assert comparison["paper"]["orig_c_lines"] == 15600
    ours = comparison["ours"]
    assert ours["esp_decl_lines"] + ours["esp_process_lines"] == ours["esp_lines"]


def test_pretty_subcommand_roundtrips(esp_file, tmp_path, capsys):
    out_path = tmp_path / "pretty.esp"
    assert main(["pretty", esp_file, "-o", str(out_path)]) == 0
    # The reformatted file still checks.
    assert main(["check", str(out_path)]) == 0


# -- the on-disk ESP corpus -------------------------------------------------------


CORPUS = __import__("pathlib").Path(__file__).resolve().parent.parent / "examples" / "esp"


@pytest.mark.parametrize("name", sorted(p.name for p in CORPUS.glob("*.esp")))
def test_corpus_file_checks(name):
    assert main(["check", str(CORPUS / name)]) == 0


@pytest.mark.parametrize("name", sorted(p.name for p in CORPUS.glob("*.esp")))
def test_corpus_file_emits_both_targets(name, tmp_path, capsys):
    assert main(["emit-c", str(CORPUS / name),
                 "-o", str(tmp_path / "out.c")]) == 0
    assert main(["emit-spin", str(CORPUS / name),
                 "-o", str(tmp_path / "out.pml")]) == 0
    assert "esp_main_loop" in (tmp_path / "out.c").read_text()
    assert "proctype" in (tmp_path / "out.pml").read_text()


def test_corpus_vmmc_matches_module_source():
    from repro.vmmc.firmware_esp import VMMC_ESP_SOURCE

    on_disk = (CORPUS / "vmmc.esp").read_text()
    assert VMMC_ESP_SOURCE.strip() in on_disk
