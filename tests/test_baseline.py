"""Unit tests for the baseline firmware (Appendix-A framework and
vmmcOrig's fast-path conditions)."""

import pytest

from repro.sim import CostModel, Simulator, Wire
from repro.sim.host import Host
from repro.sim.nic import NIC
from repro.sim.timing import CycleCounter
from repro.vmmc.baseline import VMMCBaselineFirmware
from repro.vmmc.framework import EventFramework


# -- the Appendix-A framework ---------------------------------------------------------


def make_framework():
    counter = CycleCounter()
    return EventFramework(CostModel(), counter), counter


def test_handler_dispatch_and_state():
    fw, counter = make_framework()
    sm = fw.machine("SM1")
    log = []
    fw.set_handler(sm, "WaitReq", "UserReq", lambda arg: log.append(arg))
    fw.set_state(sm, "WaitReq")
    assert fw.is_state(sm, "WaitReq")
    assert fw.deliver_event(sm, "UserReq", 42)
    assert log == [42]
    assert counter.cycles > 0


def test_unhandled_event_is_dropped_and_counted():
    fw, _ = make_framework()
    sm = fw.machine("SM1")
    fw.set_state(sm, "WaitReq")
    assert not fw.deliver_event(sm, "Bogus")
    assert fw.dropped_events == 1


def test_handlers_are_per_state():
    # The §2.2 complaint in miniature: the same event needs a handler
    # per state, and the wrong state silently loses it.
    fw, _ = make_framework()
    sm = fw.machine("SM1")
    hits = []
    fw.set_handler(sm, "A", "Go", lambda _: hits.append("a"))
    fw.set_handler(sm, "B", "Go", lambda _: hits.append("b"))
    fw.set_state(sm, "B")
    fw.deliver_event(sm, "Go")
    assert hits == ["b"]


# -- fast-path conditions ----------------------------------------------------------------


def make_firmware(fastpaths=True):
    sim = Simulator()
    cost = CostModel()
    fw = VMMCBaselineFirmware(cost, node_id=0, fastpaths=fastpaths)
    nic = NIC(sim, cost, 0, fw)
    wire = Wire(sim, cost)
    wire.attach(0, nic)

    class _Peer:
        def packet_arrived(self, packet):
            pass

    wire.attach(1, _Peer())
    nic.wire = wire
    Host(sim, cost, nic)
    return sim, fw, nic


def test_fastpath_applies_to_idle_small_send():
    sim, fw, nic = make_firmware()
    assert fw._fastpath_applicable({"size": 100, "dest": 1, "vaddr": 0})


def test_fastpath_refused_for_multi_page_send():
    sim, fw, nic = make_firmware()
    assert not fw._fastpath_applicable({"size": 8192, "dest": 1, "vaddr": 0})


def test_fastpath_refused_when_window_closed():
    sim, fw, nic = make_firmware()
    for _ in range(fw.cost.window_size):
        fw.window.take_seq()
    assert not fw._fastpath_applicable({"size": 100, "dest": 1, "vaddr": 0})


def test_fastpath_refused_when_request_in_flight():
    sim, fw, nic = make_firmware()
    fw.fastpath_in_flight = True
    assert not fw._fastpath_applicable({"size": 100, "dest": 1, "vaddr": 0})


def test_fastpath_refused_when_send_dma_busy():
    sim, fw, nic = make_firmware()
    nic.dma_send.busy_until = sim.now + 100.0
    assert not fw._fastpath_applicable({"size": 100, "dest": 1, "vaddr": 0})


def test_nofastpaths_variant_never_takes_it():
    sim, fw, nic = make_firmware(fastpaths=False)
    from repro.sim.nic import FirmwareInput

    cycles, actions = fw.step(
        [FirmwareInput("host_req", {"kind": "send", "dest": 1, "vaddr": 0,
                                    "size": 4})]
    )
    assert fw.fastpath_taken == 0
    # The slow path still transmits the inline message.
    assert any(a.kind == "net_send" for a in actions)


def test_fastpath_counts_and_charges_less():
    from repro.sim.nic import FirmwareInput

    results = {}
    for enabled in (True, False):
        sim, fw, nic = make_firmware(fastpaths=enabled)
        cycles, actions = fw.step(
            [FirmwareInput("host_req", {"kind": "send", "dest": 1, "vaddr": 0,
                                        "size": 4})]
        )
        results[enabled] = cycles
        assert any(a.kind == "net_send" for a in actions)
    assert results[True] < results[False]


def test_update_request_writes_page_table():
    from repro.sim.nic import FirmwareInput

    sim, fw, nic = make_firmware()
    fw.step([FirmwareInput("host_req", {"kind": "update", "vaddr": 0x2000,
                                        "paddr": 0x9000})])
    assert fw.page_table[0x2000] == 0x9000


def test_piggyback_ack_releases_window():
    from repro.sim.nic import FirmwareInput
    from repro.vmmc.packets import data_packet

    sim, fw, nic = make_firmware()
    fw.window.take_seq()
    fw.window.take_seq()
    assert fw.window.in_flight() == 2
    pkt = data_packet(src=1, dest=0, seq=0, ack=1, nbytes=8, msg_id=1,
                      last=True)
    fw.step([FirmwareInput("packet", pkt)])
    assert fw.window.in_flight() == 0
