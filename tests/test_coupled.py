"""Tests for multi-machine coupled verification (§5.2's multiple
firmware copies communicating)."""

import pytest

from repro import Machine, compile_source
from repro.errors import ESPRuntimeError
from repro.verify import (
    ChoiceWriter,
    CoupledSystem,
    Explorer,
    Link,
    SinkReader,
)

# One node of a two-node echo ring: receives a value, adds its node
# bias, sends it onward.
NODE = """
channel fromWireC: int
channel toWireC: int
external interface rx(out fromWireC) { Msg($v) };
external interface tx(in toWireC) { Msg($v) };
process relay {
    while (true) {
        in( fromWireC, $x);
        assert( x < 10);
        out( toWireC, x + 1);
    }
}
"""


def make_node(extra_externals=None):
    machine = Machine(compile_source(NODE), externals=dict(extra_externals or {}))
    return machine


def ring(lossy=False, seed_value=0):
    a = make_node()
    b = make_node()
    system = CoupledSystem(
        [a, b],
        [
            Link(src=0, out_channel="toWireC", dst=1, in_channel="fromWireC",
                 lossy=lossy),
            Link(src=1, out_channel="toWireC", dst=0, in_channel="fromWireC",
                 lossy=lossy),
        ],
    )
    # Inject the token: preload link 0's buffer.
    system.links[0].in_flight.append(("Msg", (seed_value,)))
    return system


def test_token_circulates_between_machines():
    system = ring(seed_value=0)
    system.run_ready()
    # Token alternates machines, incrementing until the assertion bound.
    moves = system.enabled_moves()
    assert len(moves) == 1
    result = Explorer(system, quiescence_ok=True).explore()
    # x grows by 1 per hop; at x == 10 the relay's assertion fires —
    # proving the token really crossed machines ten times.
    assert not result.ok
    assert result.violations[0].kind == "assertion"
    assert len(result.violations[0].trace) >= 10


def test_bounded_token_ring_verifies_clean():
    source = NODE.replace("assert( x < 10);", "if (x > 3) { x = 0; }")
    a = Machine(compile_source(source))
    b = Machine(compile_source(source))
    system = CoupledSystem(
        [a, b],
        [
            Link(0, "toWireC", 1, "fromWireC"),
            Link(1, "toWireC", 0, "fromWireC"),
        ],
    )
    system.links[0].in_flight.append(("Msg", (0,)))
    result = Explorer(system, quiescence_ok=True).explore()
    assert result.ok and result.complete
    # Wrapping keeps the space finite and small.
    assert result.states < 50


def test_lossy_link_adds_drop_moves():
    system = ring(lossy=True)
    system.run_ready()
    moves = system.enabled_moves()
    descriptions = [m.describe(system) for m in moves]
    assert any("wire drop" in d for d in descriptions)
    # After dropping the only token, the ring is dead: quiescence.
    drop = next(m for m in moves if "Drop" in type(m).__name__)
    system.apply(drop)
    system.run_ready()
    assert system.enabled_moves() == []


def test_lossy_exploration_includes_both_fates():
    source = NODE.replace("assert( x < 10);", "skip;").replace(
        "out( toWireC, x + 1);", "out( toWireC, (x + 1) % 3);"
    )
    a = Machine(compile_source(source))
    b = Machine(compile_source(source))
    system = CoupledSystem(
        [a, b],
        [
            Link(0, "toWireC", 1, "fromWireC", lossy=True),
            Link(1, "toWireC", 0, "fromWireC", lossy=True),
        ],
    )
    system.links[0].in_flight.append(("Msg", (0,)))
    result = Explorer(system, quiescence_ok=True).explore()
    assert result.ok and result.complete
    # States include both the circulating token and the dead-after-drop
    # configurations.
    assert result.states >= 6


def test_link_validation():
    a = make_node()
    b = make_node()
    with pytest.raises(ESPRuntimeError, match="external-reader"):
        CoupledSystem([a, b], [Link(0, "fromWireC", 1, "fromWireC")])
    a2, b2 = make_node(), make_node()
    with pytest.raises(ESPRuntimeError, match="external-writer"):
        CoupledSystem([a2, b2], [Link(0, "toWireC", 1, "toWireC")])


def test_capacity_backpressure():
    # A producer that streams into a capacity-1 link: the link endpoint
    # refuses the second message until the first is consumed.
    producer_src = """
channel toWireC: int
external interface tx(in toWireC) { Msg($v) };
process gen { $i = 0; while (i < 4) { out( toWireC, i); i = i + 1; } }
"""
    consumer_src = """
channel fromWireC: int
channel outC: int
external interface rx(out fromWireC) { Msg($v) };
external interface done(in outC) { D($v) };
process sink { while (true) { in( fromWireC, $x); out( outC, x); } }
"""
    producer = Machine(compile_source(producer_src))
    consumer = Machine(compile_source(consumer_src),
                       externals={"outC": SinkReader(["D"])})
    system = CoupledSystem(
        [producer, consumer],
        [Link(0, "toWireC", 1, "fromWireC", capacity=1)],
    )
    result = Explorer(system, quiescence_ok=True).explore()
    assert result.ok
    assert len(system.links[0].in_flight) <= 1


def test_entry_map_renames_entries():
    producer_src = """
channel toWireC: int
external interface tx(in toWireC) { Ping($v) };
process gen { out( toWireC, 7); }
"""
    consumer_src = """
channel fromWireC: int
channel outC: int
external interface rx(out fromWireC) { Pong($v) };
external interface done(in outC) { D($v) };
process sink { in( fromWireC, $x); out( outC, x); }
"""
    producer = Machine(compile_source(producer_src))
    drain = SinkReader(["D"])
    consumer = Machine(compile_source(consumer_src), externals={"outC": drain})
    system = CoupledSystem(
        [producer, consumer],
        [Link(0, "toWireC", 1, "fromWireC", entry_map={"Ping": "Pong"})],
    )
    result = Explorer(system, quiescence_ok=True).explore()
    assert result.ok
    assert drain.accepted == 1


def test_split_retransmission_across_machines():
    """The §5.2 headline: run the protocol's two halves as *separate
    machines* (separate firmware copies) joined by lossy links, and
    verify the whole setup exhaustively."""
    sender_src = """
const W = 2;
const MSGS = 2;
channel wireOutC: record of { seq: int, val: int }
channel ackInC: int
channel timeoutC: int
external interface tx(in wireOutC) { Data($seq, $val) };
external interface rx(out ackInC) { Ack($a) };
external interface timer(out timeoutC) { Timeout($t) };
process sender {
    $base = 0;
    $next = 0;
    while (base < MSGS) {
        alt {
            case( next < MSGS && next - base < W,
                  out( wireOutC, { next, next * 10 })) { next = next + 1; }
            case( in( ackInC, $a)) { if (a >= base) { base = a + 1; } }
            case( base < next, in( timeoutC, $t)) {
                $i = base;
                while (i < next) { out( wireOutC, { i, i * 10 }); i = i + 1; }
            }
        }
    }
}
"""
    receiver_src = """
channel wireInC: record of { seq: int, val: int }
channel ackOutC: int
external interface rx(out wireInC) { Data($seq, $val) };
external interface tx(in ackOutC) { Ack($a) };
process receiver {
    $expect = 0;
    while (true) {
        in( wireInC, { $seq, $val });
        if (seq == expect) {
            assert( val == seq * 10);
            expect = expect + 1;
        }
        out( ackOutC, expect - 1);
    }
}
"""
    sender = Machine(compile_source(sender_src), externals={
        "timeoutC": ChoiceWriter(["Timeout"], [("Timeout", (0,))]),
    })
    receiver = Machine(compile_source(receiver_src))
    system = CoupledSystem(
        [sender, receiver],
        [
            Link(0, "wireOutC", 1, "wireInC", lossy=True),
            Link(1, "ackOutC", 0, "ackInC", lossy=True),
        ],
    )
    result = Explorer(system, quiescence_ok=True, max_states=100_000).explore()
    assert result.ok, result.violations[:1]
    assert result.complete
    assert result.states > 20
