"""Property tests for the serve cache key (:mod:`repro.serve.keys`).

The cache is only sound if the key is exactly as blind as the verifier:
two sources that explore the same state graph must collide (alpha
renaming, reformatting, comment shuffling — all erased by the frontend
or the canonical encoding), and two jobs that could answer differently
must not (any property, reduction mode, or bound difference).  Both
directions are checked over the derandomized hypothesis program corpus
plus targeted templates.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import compile_source
from repro.lang.parser import parse
from repro.lang.pretty import print_program
from repro.serve.cache import ResultCache
from repro.serve.keys import JobSpec, cache_key, canonical_ir_hash
from tests.strategies import esp_programs


def _hash(source: str) -> str:
    return canonical_ir_hash(compile_source(source))


# -- sources that must collide -------------------------------------------------


@settings(max_examples=60, deadline=None, derandomize=True)
@given(esp_programs())
def test_reformatted_program_same_hash(source):
    # parse -> pretty-print -> reparse erases every formatting choice
    # the author made; the canonical IR hash must not see any of it.
    reformatted = print_program(parse(source, "<orig>"))
    assert _hash(reformatted) == _hash(source)


@settings(max_examples=60, deadline=None, derandomize=True)
@given(esp_programs(), st.data())
def test_comment_shuffled_program_same_hash(source, data):
    lines = source.split("\n")
    noisy = []
    for i, line in enumerate(lines):
        if data.draw(st.booleans(), label=f"comment-before-{i}"):
            noisy.append(f"// noise {i}")
        if line and data.draw(st.booleans(), label=f"block-after-{i}"):
            line = line + f"  /* shuffled {i} */"
        noisy.append(line)
    assert _hash("\n".join(noisy)) == _hash(source)


_NAME = st.from_regex(r"v[a-z0-9]{1,8}", fullmatch=True)


@settings(max_examples=60, deadline=None, derandomize=True)
@given(st.lists(_NAME, min_size=3, max_size=3, unique=True))
def test_alpha_renamed_locals_same_hash(names):
    def render(a, b, c):
        return (
            "channel ch: int\n"
            f"process p {{ ${a} = 1; out( ch, {a} + {a}); }}\n"
            f"process q {{ ${c} = 0; in( ch, ${b}); "
            f"assert( {b} + {c} <= 2); }}\n"
        )

    baseline = render("x", "y", "z")
    renamed = render(*names)
    assert _hash(renamed) == _hash(baseline)
    # ... and a cache entry stored under the original source's key is
    # found by the renamed resubmission.
    cache = ResultCache()
    spec = JobSpec(source=baseline)
    key = cache_key(_hash(baseline), spec)
    cache.put(key, {"verdict": "ok"})
    renamed_key = cache_key(_hash(renamed),
                            dataclasses.replace(spec, source=renamed))
    assert cache.get(renamed_key) == {"verdict": "ok"}


# -- sources that must NOT collide ---------------------------------------------


def test_semantic_changes_change_hash():
    # The asserted value is loop-carried so the optimizer cannot fold
    # the assertion away (a *foldable* assert legitimately vanishes
    # from the lowered IR — and then identical hashes are correct).
    base = ("channel ch: int\n"
            "process p { $i = 0; while (i < 2) { out( ch, i); "
            "i = i + 1; } }\n"
            "process q { $j = 0; while (j < 2) { in( ch, $x); "
            "assert( x <= 1); j = j + 1; } }\n")
    variants = [
        base.replace("i < 2", "i < 3").replace("j < 2", "j < 3"),  # sizes
        base.replace("x <= 1", "x <= 0"),             # assertion bound
        base.replace("channel ch", "channel other")
            .replace("( ch", "( other"),              # channel name (kept!)
        base + "process r { skip; }\n",               # extra process
    ]
    hashes = {_hash(base)}
    for variant in variants:
        hashes.add(_hash(variant))
    assert len(hashes) == len(variants) + 1


# -- spec fields that must (not) move the key ----------------------------------

_SOURCE = ("channel ch: int\n"
           "process p { out( ch, 1); }\n"
           "process q { in( ch, $x); }\n")

# Every mutation that may change the verdict, the counterexamples, or
# the reported counts: each must produce a distinct cache key.
_KEY_CHANGING = [
    {"max_states": 17},
    {"max_states": None},
    {"max_depth": 9},
    {"reduce": "por"},
    {"reduce": "sym"},
    {"reduce": "por,sym"},
    {"check_deadlock": False},
    {"quiescence_ok": False},
    {"parallel": 2},            # engine *shape* (dfs -> bfs)
    {"process": "p"},           # property set gains "memory"
]

# Proven result-neutral: identical results for every value, so they
# must coalesce onto one key.
_KEY_NEUTRAL = [
    {"store": "plain"},
    {"store": "disk"},
    {"filename": "elsewhere.esp"},
]


def test_key_changing_fields_each_produce_distinct_keys():
    ir_hash = _hash(_SOURCE)
    base = JobSpec(source=_SOURCE)
    keys = {cache_key(ir_hash, base)}
    for mutation in _KEY_CHANGING:
        spec = dataclasses.replace(base, **mutation)
        keys.add(cache_key(ir_hash, spec))
    assert len(keys) == len(_KEY_CHANGING) + 1


def test_result_neutral_fields_share_the_key():
    ir_hash = _hash(_SOURCE)
    base_key = cache_key(ir_hash, JobSpec(source=_SOURCE))
    for mutation in _KEY_NEUTRAL:
        spec = dataclasses.replace(JobSpec(source=_SOURCE), **mutation)
        assert cache_key(ir_hash, spec) == base_key, mutation


def test_parallel_worker_count_is_not_part_of_the_key():
    ir_hash = _hash(_SOURCE)
    keys = {
        cache_key(ir_hash, JobSpec(source=_SOURCE, parallel=n))
        for n in (1, 2, 4, 8)
    }
    assert len(keys) == 1


def test_memsafety_bounds_join_the_key_only_with_a_process():
    ir_hash = _hash(_SOURCE)
    # Without --process the §5.3 bounds are inert and must not split
    # the key ...
    a = cache_key(ir_hash, JobSpec(source=_SOURCE, int_domain=(0, 1)))
    b = cache_key(ir_hash, JobSpec(source=_SOURCE, int_domain=(0, 1, 2)))
    assert a == b
    # ... with it, every bound is part of the explored space.
    keys = {
        cache_key(ir_hash, JobSpec(source=_SOURCE, process="p")),
        cache_key(ir_hash, JobSpec(source=_SOURCE, process="p",
                                   int_domain=(0, 1, 2))),
        cache_key(ir_hash, JobSpec(source=_SOURCE, process="p",
                                   array_sizes=(1, 2))),
        cache_key(ir_hash, JobSpec(source=_SOURCE, process="p",
                                   max_objects=7)),
        cache_key(ir_hash, JobSpec(source=_SOURCE, process="p",
                                   env_budget=3)),
    }
    assert len(keys) == 5


@settings(max_examples=40, deadline=None, derandomize=True)
@given(esp_programs())
def test_hash_is_stable_across_compilations(source):
    # Recompiling the identical source must always yield the identical
    # hash — no dict-order or id() leakage into the canonical tree.
    assert _hash(source) == _hash(source)


def test_reduce_spelling_is_normalized():
    ir_hash = _hash(_SOURCE)
    a = cache_key(ir_hash, JobSpec(source=_SOURCE, reduce="por,sym"))
    b = cache_key(ir_hash, JobSpec(source=_SOURCE, reduce="sym,por"))
    assert a == b
