"""Congestion-model regressions for the switched fabric (ISSUE 10).

The switch's failure modes must stay *graceful*: a full shared buffer
drops packets (it never blocks a port, so the fabric cannot deadlock),
a hot receiver cannot starve bystander flows (its congestion is
confined to its own port's share of the buffer), and the whole
congestion path is pinned by a scripted incast golden under one fault
seed — any change to admission, service order, or drop accounting
shows up as a byte diff in ``tests/goldens/fabric_incast_seed42.json``.

Regenerating the golden (only after an intentional model change):

    PYTHONPATH=src python tests/test_fabric_negative.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.events import Simulator
from repro.sim.fabric import FabricConfig, run_fabric
from repro.sim.faults import FaultPlan
from repro.sim.switch import Switch, SwitchConfig
from repro.sim.timing import CostModel

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

# The scripted congestion scenario: an 8-node incast squeezed through
# a buffer an order of magnitude below the offered burst, with losses
# on the links too.  Small message counts keep the run fast while the
# window burst (7 senders x window 4) still overwhelms admission.
_GOLDEN_CONFIG = FabricConfig(
    nodes=8, scenario="incast", messages=6, window=4, seed=0,
    switch=SwitchConfig(buffer_bytes=8_192),
)
_GOLDEN_PLAN = FaultPlan(seed=42, drop=0.03, dup=0.01, delay=0.02)


def _golden_run() -> str:
    report = run_fabric(_GOLDEN_CONFIG, plan=_GOLDEN_PLAN)
    assert report.converged, report.summary()
    assert report.exactly_once_in_order()
    assert report.network["switch"]["congestion_drops"] > 0
    return report.stats_json() + "\n"


# -- buffer exhaustion drops, never deadlocks ------------------------------------


def test_buffer_exhaustion_drops_and_still_converges():
    # The smallest legal buffer holds exactly one max-size packet:
    # incast slams it, most of every burst is dropped at admission,
    # and the run must still converge through retransmission —
    # congestion can cost time, never liveness.
    cost = CostModel()
    report = run_fabric(
        FabricConfig(
            nodes=6, scenario="incast", messages=4, window=4,
            switch=SwitchConfig(
                buffer_bytes=cost.mtu + cost.packet_header_bytes),
        ),
    )
    assert report.converged, report.summary()
    assert report.exactly_once_in_order()
    switch = report.network["switch"]
    assert switch["congestion_drops"] > 0
    assert switch["buffer_used"] == 0  # drained, not wedged
    retrans = sum(ep["reliability"]["retransmissions"]
                  for node in report.node_stats
                  for ep in node["endpoints"])
    assert retrans > 0  # drops forced real recovery work


def test_buffer_smaller_than_one_packet_rejected():
    cost = CostModel()
    sim = Simulator()
    with pytest.raises(ValueError):
        Switch(sim, cost, 4, config=SwitchConfig(buffer_bytes=256))
    with pytest.raises(ValueError):
        Switch(sim, cost, 4, config=SwitchConfig(
            buffer_bytes=cost.mtu + cost.packet_header_bytes - 1))


def test_switch_needs_two_ports():
    with pytest.raises(ValueError):
        Switch(Simulator(), CostModel(), 1)


# -- the hot receiver cannot starve bystanders -----------------------------------


def test_hot_receiver_does_not_starve_ring_flows():
    # Node 0 is hammered by every other node while a ring circulates
    # among nodes 1..N-1.  The per-port cap confines the hot port's
    # congestion to its own share of the shared buffer, so the ring
    # flows must complete with zero drops at *their* ports.
    report = run_fabric(
        FabricConfig(
            nodes=6, scenario="hot_receiver", messages=5, window=4,
            switch=SwitchConfig(buffer_bytes=16_384),
        ),
    )
    assert report.converged, report.summary()
    assert report.exactly_once_in_order()
    network = report.network
    # All congestion landed on the hot port; the bystander ring ports
    # never saw a drop.
    for node in range(1, 6):
        assert network[f"down{node}"]["congestion_drops"] == 0
    # Every ring flow (dst != 0) was delivered in full and in order.
    for flow in report.flows:
        if flow.dst != 0:
            assert report.flow_delivered(flow) == report.expected(flow)


def test_hot_port_congestion_does_not_consume_whole_buffer():
    # Even mid-incast, the per-port cap leaves shared-buffer headroom:
    # the hot port's peak occupancy never exceeds its cap.
    report = run_fabric(
        FabricConfig(
            nodes=8, scenario="incast", messages=6, window=8,
            switch=SwitchConfig(buffer_bytes=16_384),
        ),
    )
    assert report.converged, report.summary()
    network = report.network
    cap = network["switch"]["port_cap_bytes"]
    assert network["down0"]["queue_peak_bytes"] <= cap
    assert network["down0"]["queue_peak_bytes"] > 0


# -- misrouting and attachment ---------------------------------------------------


def test_misrouted_packets_are_counted_not_crashed():
    sim = Simulator()
    cost = CostModel()
    switch = Switch(sim, cost, 2)

    class _Sink:
        def packet_arrived(self, packet):
            pass

    switch.attach(0, _Sink())
    switch.attach(1, _Sink())
    switch.send(0, {"dest": 7, "nbytes": 0}, 16)      # no such port
    switch.send(0, {"nbytes": 0}, 16)                 # no dest at all
    switch.send(0, {"dest": 1, "nbytes": 0}, 16)      # fine
    sim.run()
    assert switch.misrouted == 2
    assert switch.routed == 1
    assert switch.quiescent()


def test_unattached_port_is_a_hard_error():
    sim = Simulator()
    switch = Switch(sim, CostModel(), 2)
    switch.send(0, {"dest": 1, "nbytes": 0}, 16)
    with pytest.raises(RuntimeError):
        sim.run()


# -- config validation ------------------------------------------------------------


@pytest.mark.parametrize("kwargs", [
    dict(nodes=1),
    dict(scenario="storm"),
    dict(scenario="hot_receiver", nodes=2),
    dict(messages=0),
    dict(messages_back=-1),
    dict(dispatch="warp"),
])
def test_config_validation_rejects(kwargs):
    with pytest.raises(ValueError):
        FabricConfig(**kwargs)


# -- the scripted incast golden ---------------------------------------------------


def test_incast_congestion_golden():
    golden = (GOLDEN_DIR / "fabric_incast_seed42.json").read_text()
    assert _golden_run() == golden


def test_incast_golden_is_canonical_json():
    text = (GOLDEN_DIR / "fabric_incast_seed42.json").read_text()
    data = json.loads(text)
    assert text == json.dumps(data, sort_keys=True) + "\n"
    assert data["converged"] is True
    assert data["network"]["switch"]["congestion_drops"] > 0


if __name__ == "__main__":  # regeneration entry point (see docstring)
    (GOLDEN_DIR / "fabric_incast_seed42.json").write_text(_golden_run())
    print("wrote goldens/fabric_incast_seed42.json")
