"""Tests for the pretty-printer, including parse∘print round-trip
properties over generated expression ASTs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.pretty import print_expr, print_program
from tests.test_parser import APPENDIX_B


def strip(node):
    """A structural digest of an AST node, ignoring spans and types."""
    if isinstance(node, ast.Node):
        fields = {}
        for name, value in vars(node).items():
            if name in ("span", "type"):
                continue
            fields[name] = strip(value)
        return (type(node).__name__, tuple(sorted(fields.items())))
    if isinstance(node, list):
        return tuple(strip(v) for v in node)
    if isinstance(node, tuple):
        return tuple(strip(v) for v in node)
    return node


def reparse_expr(e: ast.Expr) -> ast.Expr:
    text = print_expr(e)
    program = parse(f"process p {{ $x = {text}; }}")
    return program.processes()[0].body.stmts[0].init


# -- whole-program round trip ----------------------------------------------------


def test_appendix_b_roundtrips():
    program = parse(APPENDIX_B)
    printed = print_program(program)
    reparsed = parse(printed)
    assert strip(program) == strip(reparsed)


def test_roundtrip_is_fixpoint():
    program = parse(APPENDIX_B)
    once = print_program(program)
    twice = print_program(parse(once))
    assert once == twice


def test_statement_coverage_roundtrip():
    src = """
const N = 3;
channel c: int
process p {
    $i: int = 0;
    $b = true;
    $a = #{ N -> 0 };
    $frozen = cast(a);
    a[0] = 1;
    { $x }: record of { x: int } = { 5 };
    while (i < N) {
        if (b && i != 1) { i = i + 1; } else { break; }
    }
    alt {
        case( i > 0, in( c, $v)) { print(v); }
        case( out( c, i)) { skip; }
    }
    link( a);
    unlink( a);
    unlink( a);
    unlink( frozen);
    assert( i <= N);
}
"""
    program = parse(src)
    assert strip(parse(print_program(program))) == strip(program)


# -- generated expressions ------------------------------------------------------------


@st.composite
def exprs(draw, depth=3):
    if depth == 0:
        return draw(st.one_of(
            st.integers(-999, 999).map(
                lambda v: ast.IntLit(None, value=abs(v)) if v >= 0
                else ast.Unary(None, op="-", operand=ast.IntLit(None, value=-v))
            ),
            st.sampled_from("abcxyz").map(lambda n: ast.Var(None, name=n)),
        ))
    kind = draw(st.sampled_from(["binary", "unary", "index", "leaf", "leaf"]))
    if kind == "binary":
        op = draw(st.sampled_from(["+", "-", "*", "/", "%", "<", "==",
                                   "<<", "&", "|", "^"]))
        return ast.Binary(None, op=op,
                          left=draw(exprs(depth=depth - 1)),
                          right=draw(exprs(depth=depth - 1)))
    if kind == "unary":
        return ast.Unary(None, op="-", operand=draw(exprs(depth=depth - 1)))
    if kind == "index":
        return ast.Index(None, base=ast.Var(None, name="arr"),
                         index=draw(exprs(depth=depth - 1)))
    return draw(exprs(depth=0))


@given(exprs())
@settings(max_examples=150)
def test_property_expr_roundtrip(e):
    assert strip(reparse_expr(e)) == strip(e)


@given(exprs())
@settings(max_examples=60)
def test_property_printing_is_deterministic(e):
    assert print_expr(e) == print_expr(e)


def test_precedence_parenthesization():
    # (a + b) * c must keep its parentheses; a + b * c must not gain any.
    e1 = ast.Binary(None, op="*",
                    left=ast.Binary(None, op="+",
                                    left=ast.Var(None, name="a"),
                                    right=ast.Var(None, name="b")),
                    right=ast.Var(None, name="c"))
    assert print_expr(e1) == "(a + b) * c"
    e2 = ast.Binary(None, op="+",
                    left=ast.Var(None, name="a"),
                    right=ast.Binary(None, op="*",
                                     left=ast.Var(None, name="b"),
                                     right=ast.Var(None, name="c")))
    assert print_expr(e2) == "a + b * c"


def test_left_associativity_preserved():
    # a - b - c parses as (a - b) - c; a - (b - c) needs parens.
    e = ast.Binary(None, op="-",
                   left=ast.Var(None, name="a"),
                   right=ast.Binary(None, op="-",
                                    left=ast.Var(None, name="b"),
                                    right=ast.Var(None, name="c")))
    text = print_expr(e)
    assert text == "a - (b - c)"
    assert strip(reparse_expr(e)) == strip(e)
