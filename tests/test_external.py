"""Unit tests for the external-channel bridges (the C interface role,
§4.5) and machine-level external behaviours."""

import pytest

from repro import (
    CollectorReader,
    Machine,
    QueueWriter,
    Scheduler,
    compile_source,
)
from repro.errors import ESPRuntimeError
from repro.runtime.external import (
    CallbackReader,
    CallbackWriter,
    CollectorReader as _Collector,
    QueueWriter as _Queue,
)


# -- bridge objects ---------------------------------------------------------------


def test_queue_writer_is_ready_indexes_patterns():
    # IsReady returns the 1-based pattern index, like UserReqIsReady.
    w = _Queue(["Send", "Update"])
    assert w.is_ready() == 0
    w.post("Update", 5)
    assert w.is_ready() == 2
    w.post("Send", 1, 2)
    assert w.take("Update") == (5,)
    assert w.is_ready() == 1


def test_queue_writer_rejects_unknown_entry():
    w = _Queue(["Send"])
    with pytest.raises(ValueError):
        w.post("Bogus", 1)


def test_queue_writer_snapshot_restore():
    w = _Queue(["F"])
    w.post("F", 1)
    snap = w.snapshot()
    w.take("F")
    assert w.is_ready() == 0
    w.restore(snap)
    assert w.is_ready() == 1


def test_collector_reader_capacity_backpressure():
    r = _Collector(["D"], capacity=1)
    assert r.can_accept()
    r.accept("D", (1,))
    assert not r.can_accept()


def test_callback_bridges():
    seen = []
    reader = CallbackReader(["X"], lambda entry, args: seen.append((entry, args)),
                            ready=lambda: True)
    assert reader.can_accept()
    reader.accept("X", (1, 2))
    assert seen == [("X", (1, 2))]

    polled = {"n": 0}

    def poll():
        polled["n"] += 1
        return 1 if polled["n"] == 1 else 0

    writer = CallbackWriter(["Y"], poll, lambda entry: (9,))
    assert writer.is_ready() == 1
    assert writer.take("Y") == (9,)
    assert writer.is_ready() == 0


# -- machine-level external behaviour -------------------------------------------------


def test_missing_bridge_detected_at_first_run():
    src = """
channel inC: int
external interface feed(out inC) { F($v) };
process p { in( inC, $x); print(x); }
"""
    machine = Machine(compile_source(src))  # constructing is fine
    with pytest.raises(ESPRuntimeError, match="ExternalWriter"):
        Scheduler(machine).run()


def test_aggregate_arguments_cross_the_boundary():
    src = """
type dataT = array of int
channel inC: dataT
channel outC: record of { first: int, rest: dataT }
external interface feed(out inC) { F($data) };
external interface drain(in outC) { D($first, $rest) };
process p {
    while (true) {
        in( inC, $d);
        out( outC, { d[0], d });
        unlink( d);
    }
}
"""
    feed = QueueWriter(["F"])
    drain = CollectorReader(["D"])
    feed.post("F", [3, 1, 4, 1, 5])
    machine = Machine(compile_source(src), externals={"inC": feed, "outC": drain})
    Scheduler(machine).run()
    assert drain.received == [("D", (3, [3, 1, 4, 1, 5]))]
    assert machine.heap.live_count() == 0


def test_union_dispatch_from_external_union_data():
    # Whole-union values cross from Python with ("tag", payload) pairs.
    src = """
type reqT = union of { go: int, stop: bool }
channel inC: reqT
channel outC: int
external interface feed(out inC) { Any($req) };
external interface drain(in outC) { D($v) };
process goer { while (true) { in( inC, { go |> $n }); out( outC, n); } }
process stopper { while (true) { in( inC, { stop |> $b }); out( outC, 0 - 1); } }
"""
    feed = QueueWriter(["Any"])
    drain = CollectorReader(["D"])
    feed.post("Any", ("go", 7))
    feed.post("Any", ("stop", True))
    machine = Machine(compile_source(src), externals={"inC": feed, "outC": drain})
    Scheduler(machine).run()
    # Which process's reply reaches the drain first is a scheduling
    # choice (two independent writers); the multiset is not.
    assert sorted(args[0] for _, args in drain.received) == [-1, 7]


def test_missing_binder_argument_is_undeliverable():
    src = """
channel inC: record of { a: int, b: int }
external interface feed(out inC) { F($a, $b) };
process p { in( inC, { $x, $y }); print(x + y); }
"""
    feed = QueueWriter(["F"])
    feed.post("F", 1)  # one argument short
    machine = Machine(compile_source(src), externals={"inC": feed})
    result = Scheduler(machine).run()
    # The malformed offer matches no receiver, so it is never taken and
    # the process never runs (the routing check consumes nothing).
    assert result.reason == "idle"
    assert machine.prints == []
    assert feed.queue  # still queued, untouched


def test_snapshot_restore_roundtrip_mid_protocol():
    src = """
channel aC: int
channel bC: int
channel outC: int
external interface feed(out aC) { F($v) };
external interface drain(in outC) { D($v) };
process p {
    while (true) {
        in( aC, $x);
        out( bC, x + 1);
    }
}
process q { while (true) { in( bC, $y); out( outC, y * 2); } }
"""
    feed = QueueWriter(["F"])
    drain = CollectorReader(["D"])
    feed.post("F", 10)
    feed.post("F", 20)
    machine = Machine(compile_source(src), externals={"aC": feed, "outC": drain})
    scheduler = Scheduler(machine)
    machine.run_ready()
    snap = machine.snapshot()
    scheduler.run()
    after_full = [args[0] for _, args in drain.received]
    assert after_full == [22, 42]
    # Restore to the beginning and re-run: identical behaviour.
    machine.restore(snap)
    drain.received.clear()
    scheduler.run()
    assert [args[0] for _, args in drain.received] == [22, 42]
