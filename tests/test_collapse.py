"""The collapse-compressed visited store and its transport helpers.

The store is a lossless compression of the visited set (SPIN's
COLLAPSE, not bit-state hashing): the differential property here pins
the exact-equivalence guarantee — exploration through the collapse
store visits precisely the states a plain canonical-state set would.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import compile_source
from repro.errors import ESPError
from repro.runtime.machine import Machine
from repro.verify.collapse import (
    MachineCollapseStore,
    PlainStore,
    SnapshotCodec,
    StateKeyer,
    make_visited_store,
)
from repro.verify.explorer import Explorer
from repro.verify.state import canonical_state
from repro.vmmc.retransmission import build_machine, protocol_source
from tests.strategies import esp_programs


def _explore(source: str, store: str):
    machine = Machine(compile_source(source))
    return Explorer(machine, quiescence_ok=False, stop_at_first=False,
                    store=store).explore()


# -- the property: collapse == plain ------------------------------------------


@settings(max_examples=15, deadline=None)
@given(esp_programs())
def test_collapse_store_is_exact(source):
    collapse = _explore(source, "collapse")
    plain = _explore(source, "plain")
    assert (collapse.states, collapse.transitions, collapse.max_depth) == \
        (plain.states, plain.transitions, plain.max_depth), source
    assert sorted((v.kind, v.message) for v in collapse.violations) == \
        sorted((v.kind, v.message) for v in plain.violations), source


# -- store mechanics ----------------------------------------------------------


def _settled_machine() -> Machine:
    machine = build_machine(protocol_source(window=1, messages=2))
    machine.run_ready()
    return machine


def test_add_current_dedups_revisits():
    machine = _settled_machine()
    store = make_visited_store(machine)
    assert isinstance(store, MachineCollapseStore)
    is_new, token = store.add_current(machine)
    assert is_new and token is not None
    snap = machine.snapshot()
    token[0] = snap
    machine.restore(snap)
    assert store.add_current(machine, token) == (False, None)
    # A genuinely different state is new again.
    machine.apply(machine.enabled_moves()[0])
    machine.run_ready()
    is_new, _ = store.add_current(machine, token)
    assert is_new


def test_add_and_add_current_agree():
    # The fused fast path must produce byte-identical visited keys to
    # interning a prebuilt canonical state.
    machine = _settled_machine()
    by_state = make_visited_store(machine)
    by_machine = make_visited_store(machine)
    assert by_state.add(canonical_state(machine))
    assert by_machine.add_current(machine)[0]
    snap = machine.snapshot()
    for index in range(len(machine.enabled_moves())):
        machine.restore(snap)
        try:
            machine.apply(machine.enabled_moves()[index])
            machine.run_ready()
        except ESPError:
            continue
        assert by_state.add(canonical_state(machine)) == \
            by_machine.add_current(machine)[0]
    assert by_state._seen == by_machine._seen


def test_memory_bytes_matches_stats():
    def run(store: str):
        machine = build_machine(protocol_source(window=1, messages=2))
        return Explorer(machine, stop_at_first=False, store=store).explore()

    result = run("collapse")
    assert result.ok and result.states > 0
    assert result.memory_bytes > 0
    assert result.stats["store"]["memory_bytes"] == result.memory_bytes
    assert result.stats["store"]["states"] == result.states
    # Collapse beats the plain store's full canonical encodings.
    plain = run("plain")
    assert result.memory_bytes < plain.memory_bytes


def test_make_visited_store_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_visited_store(_settled_machine(), "bitmap")


def test_plain_store_reports_footprint():
    machine = _settled_machine()
    store = PlainStore()
    assert store.add_current(machine)[0]
    assert store.memory_bytes() > 0
    assert store.stats()["states"] == 1


# -- digests and transport ----------------------------------------------------


def test_state_keyer_is_instance_independent():
    machine = _settled_machine()
    state = canonical_state(machine)
    assert StateKeyer().digest(state) == StateKeyer().digest(state)
    assert StateKeyer(seed=1).digest(state) != StateKeyer().digest(state)
    machine.apply(machine.enabled_moves()[0])
    machine.run_ready()
    assert StateKeyer().digest(canonical_state(machine)) != \
        StateKeyer().digest(state)


def test_snapshot_codec_roundtrip_across_instances():
    # Descriptors travel between processes; payloads travel once as a
    # delta.  A fresh codec that merged the delta must reconstruct a
    # snapshot that restores to the identical canonical state.
    machine = _settled_machine()
    sender = SnapshotCodec()
    desc = sender.encode(machine.snapshot_portable())
    state = canonical_state(machine)
    delta = sender.drain()

    receiver = SnapshotCodec()
    receiver.merge(delta)
    machine.apply(machine.enabled_moves()[0])  # wander off first
    machine.run_ready()
    machine.restore_portable(receiver.decode(desc))
    assert canonical_state(machine) == state


def test_snapshot_codec_missing_payload_is_detected():
    machine = _settled_machine()
    sender = SnapshotCodec()
    desc = sender.encode(machine.snapshot_portable())
    with pytest.raises(RuntimeError):
        SnapshotCodec().decode(desc)  # never merged the delta
