"""Differential testing: the generated C firmware must agree with the
interpreter on the same input stream (compile once, then drive the
binary with random inputs from hypothesis)."""

import shutil
import subprocess

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CollectorReader,
    Machine,
    QueueWriter,
    Scheduler,
    compile_source,
)
from repro.backends.c import generate_c

GCC = shutil.which("gcc") or shutil.which("cc")

# One program exercising dispatch, alt, records, arrays, refcounts,
# guards, and arithmetic — the C backend's whole surface.
PROGRAM = """
type dataT = array of int
type reqT = union of { compute: record of { a: int, b: int }, reset: int }
const BIAS = 7;

channel reqC: reqT
channel accC: int
channel outC: int
external interface req(out reqC) {
    Compute({ compute |> { $a, $b }}),
    Reset({ reset |> $v })
};
external interface drain(in outC) { D($v) };

process computer {
    while (true) {
        in( reqC, { compute |> { $a, $b }});
        $buf = #{ 4 -> a };
        buf[1] = b;
        $r = buf[0] * buf[1] + BIAS;
        out( accC, r);
        unlink( buf);
    }
}

process accumulator {
    $total = 0;
    while (true) {
        alt {
            case( in( accC, $v)) {
                total = total + v;
                out( outC, total);
            }
            case( in( reqC, { reset |> $z })) {
                total = z;
                out( outC, total);
            }
        }
    }
}
"""

HARNESS = r"""
#include <stdio.h>
#include <stdint.h>
typedef intptr_t esp_val;

/* input script: lines "C a b" (compute) or "R v" (reset) on stdin */
static int kind = 0;           /* 0 none, 1 compute, 2 reset */
static long arg_a, arg_b;

static void advance(void) {
    char op;
    if (kind != 0) return;
    if (scanf(" %c", &op) != 1) { kind = -1; return; }
    if (op == 'C') { scanf("%ld %ld", &arg_a, &arg_b); kind = 1; }
    else { scanf("%ld", &arg_a); kind = 2; }
}

int reqIsReady(void) { advance(); return kind > 0 ? kind : 0; }
void reqCompute(esp_val *a, esp_val *b) { *a = arg_a; *b = arg_b; kind = 0; }
void reqReset(esp_val *v) { *v = arg_a; kind = 0; }

int drainIsReady(void) { return 1; }
void drainD(esp_val v) { printf("%ld\n", (long)v); }

void esp_init(void);
void esp_run(int max_polls);

int main(void) {
    esp_init();
    for (int i = 0; i < 4096 && kind != -1; i++) esp_run(-1);
    return 0;
}
"""


@pytest.fixture(scope="module")
def c_binary(tmp_path_factory):
    if GCC is None:
        pytest.skip("no C compiler available")
    tmp = tmp_path_factory.mktemp("diff")
    (tmp / "pgm.c").write_text(generate_c(compile_source(PROGRAM)))
    (tmp / "harness.c").write_text(HARNESS)
    binary = tmp / "pgm"
    subprocess.run(
        [GCC, "-O1", "-o", str(binary), str(tmp / "pgm.c"),
         str(tmp / "harness.c")],
        check=True, capture_output=True, text=True,
    )
    return str(binary)


def interpreter_outputs(script):
    req = QueueWriter(["Compute", "Reset"])
    drain = CollectorReader(["D"])
    for item in script:
        if item[0] == "C":
            req.post("Compute", item[1], item[2])
        else:
            req.post("Reset", item[1])
    machine = Machine(compile_source(PROGRAM),
                      externals={"reqC": req, "outC": drain})
    Scheduler(machine).run()
    return [args[0] for _, args in drain.received]


def c_outputs(c_binary, script):
    lines = []
    for item in script:
        if item[0] == "C":
            lines.append(f"C {item[1]} {item[2]}")
        else:
            lines.append(f"R {item[1]}")
    result = subprocess.run(
        [c_binary], input="\n".join(lines) + "\n",
        capture_output=True, text=True, timeout=30,
    )
    assert result.returncode == 0, result.stderr
    return [int(x) for x in result.stdout.split()]


script_items = st.one_of(
    st.tuples(st.just("C"), st.integers(-50, 50), st.integers(-50, 50)),
    st.tuples(st.just("R"), st.integers(-100, 100)),
)


@given(st.lists(script_items, min_size=0, max_size=12))
@settings(max_examples=20, deadline=None)
def test_c_and_interpreter_agree(c_binary, script):
    assert c_outputs(c_binary, script) == interpreter_outputs(script)


def test_known_sequence(c_binary):
    script = [("C", 2, 3), ("R", 100), ("C", -1, 5), ("C", 0, 0)]
    expected = interpreter_outputs(script)
    # compute 2*3+7=13 -> total 13; reset 100; compute -5+7=2 -> 102;
    # compute 0+7=7 -> 109
    assert expected == [13, 100, 102, 109]
    assert c_outputs(c_binary, script) == expected
