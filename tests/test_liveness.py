"""Tests for the liveness checker (AG EF and goal-free-cycle checks,
the §5.1 "absence of starvation" properties)."""

from repro import Machine, compile_source
from repro.verify import (
    ChoiceWriter,
    SinkReader,
    check_always_eventually,
    check_no_goal_free_cycles,
)
from repro.runtime.interp import Status


def pc_of(machine, process_name):
    for ps in machine.processes:
        if ps.proc.name == process_name:
            return ps
    raise KeyError(process_name)


# A server that always eventually serves the slow client: the alt has
# both arms, and every path keeps both reachable.
FAIR = """
channel fastC: int
channel slowC: int
channel outC: int
external interface feedF(out fastC) { F($v) };
external interface feedS(out slowC) { S($v) };
external interface drain(in outC) { D($v) };
process server {
    while (true) {
        alt {
            case( in( fastC, $x)) { out( outC, x); }
            case( in( slowC, $y)) { out( outC, y + 100); }
        }
    }
}
"""


def fair_machine():
    return Machine(
        compile_source(FAIR),
        externals={
            "fastC": ChoiceWriter(["F"], [("F", (1,))]),
            "slowC": ChoiceWriter(["S"], [("S", (2,))]),
            "outC": SinkReader(["D"]),
        },
    )


def test_always_eventually_holds_for_fair_server():
    machine = fair_machine()

    def slow_delivered(m):
        # Goal: the server is mid-delivery of a slow message (its pc
        # sits in the slow arm's body, at the out).
        ps = pc_of(m, "server")
        return ps.status is Status.BLOCKED and ps.block.kind == "out"

    result = check_always_eventually(machine, slow_delivered)
    assert result.holds, result.summary()
    assert result.complete
    assert result.goal_states > 0


def test_goal_free_cycle_found_when_fast_can_starve_slow():
    # The fast channel alone can cycle the server forever — an infinite
    # execution on which the slow message is never taken.  The
    # goal-free-cycle check exposes it (this is why the paper demands
    # the channel-selection policy "must prevent starvation": the
    # *scheduler* must not follow this cycle forever).
    machine = fair_machine()

    def served_slow(m):
        env = m.externals["slowC"]
        return False  # strictest goal: never satisfied by construction

    result = check_no_goal_free_cycles(machine, served_slow)
    assert not result.holds
    assert result.witness is not None


def test_no_goal_free_cycles_when_goal_is_on_every_loop():
    machine = fair_machine()

    def any_delivery(m):
        ps = pc_of(m, "server")
        return ps.status is Status.BLOCKED and ps.block.kind == "out"

    # Every loop through the server passes a delivery: no goal-free cycle.
    result = check_no_goal_free_cycles(machine, any_delivery)
    assert result.holds, result.summary()


def test_always_eventually_violated_by_absorbing_state():
    # Once `stopper` consumes the token, `worker` can never run again:
    # a reachable state from which the goal is unreachable.
    src = """
channel tokenC: int
channel outC: int
external interface drain(in outC) { D($v) };
process giver { out( tokenC, 1); }
process worker {
    in( tokenC, $x);
    while (true) {
        out( outC, x);
    }
}
"""
    machine = Machine(compile_source(src), externals={"outC": SinkReader(["D"])})

    def worker_out(m):
        ps = pc_of(m, "worker")
        return ps.status is Status.BLOCKED and ps.block.kind == "out"

    # goal = the *giver* can still act; once the token is gone it cannot.
    def giver_active(m):
        return pc_of(m, "giver").status is not Status.DONE

    result = check_always_eventually(machine, giver_active)
    assert not result.holds
    assert "never reach the goal" in result.reason
    # but the worker keeps running forever: AG EF worker_out holds.
    machine2 = Machine(compile_source(src), externals={"outC": SinkReader(["D"])})
    assert check_always_eventually(machine2, worker_out).holds


def test_liveness_respects_state_budget():
    src = """
channel c: int
external interface feed(out c) { F($v) };
process p { $n = 0; while (true) { in( c, $x); n = n + x; } }
"""
    env = ChoiceWriter(["F"], [("F", (1,))])
    machine = Machine(compile_source(src), externals={"c": env})
    result = check_always_eventually(machine, lambda m: True, max_states=5)
    assert not result.complete
    assert result.states <= 6
