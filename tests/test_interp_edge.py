"""Edge-case tests for the interpreter's refcount discipline, alt
semantics, and machine moves."""

import pytest

from repro import (
    CollectorReader,
    Machine,
    QueueWriter,
    Scheduler,
    compile_source,
)
from repro.errors import ESPRuntimeError, MemorySafetyError
from repro.verify import ChoiceWriter, Explorer, SinkReader


def run_source(src, externals=None, policy="stack", max_objects=None):
    machine = Machine(compile_source(src), externals=externals or {},
                      max_objects=max_objects)
    result = Scheduler(machine, policy=policy).run()
    return machine, result


# -- fresh/borrowed discipline corner cases ----------------------------------------


def test_nested_fresh_literals_balance():
    src = """
type innerT = record of { x: int }
type outerT = record of { i: innerT, n: int }
channel doneC: int
external interface drain(in doneC) { D($v) };
process p {
    $o: outerT = { { 5 }, 6 };
    out( doneC, o.i.x + o.n);
    unlink( o);
}
"""
    drain = CollectorReader(["D"])
    machine, _ = run_source(src, {"doneC": drain})
    assert drain.received == [("D", (11,))]
    assert machine.heap.live_count() == 0


def test_reading_component_of_fresh_temporary():
    # `{1, {2 -> 9}}.a` style reads through a temporary must keep the
    # component alive while the wrapper is reclaimed.
    src = """
type dataT = array of int
type wrapT = record of { n: int, d: dataT }
channel doneC: int
external interface drain(in doneC) { D($v) };
process p {
    $w: wrapT = { 1, { 2 -> 9 } };
    $d = w.d;
    link( d);
    unlink( w);
    out( doneC, d[1]);
    unlink( d);
}
"""
    drain = CollectorReader(["D"])
    machine, _ = run_source(src, {"doneC": drain})
    assert drain.received == [("D", (9,))]
    assert machine.heap.live_count() == 0


def test_array_fill_with_aggregate_fill_value():
    src = """
type dataT = array of int
channel doneC: int
external interface drain(in doneC) { D($v) };
process p {
    $shared: dataT = { 2 -> 7 };
    $table = #{ 3 -> shared };
    out( doneC, table[2][0]);
    unlink( table);
    unlink( shared);
}
"""
    drain = CollectorReader(["D"])
    machine, _ = run_source(src, {"doneC": drain})
    assert drain.received == [("D", (7,))]
    assert machine.heap.live_count() == 0


def test_zero_length_array_fill():
    src = """
channel doneC: int
external interface drain(in doneC) { D($v) };
process p { $a = #{ 0 -> 5 }; out( doneC, 1); unlink( a); }
"""
    drain = CollectorReader(["D"])
    machine, _ = run_source(src, {"doneC": drain})
    assert machine.heap.live_count() == 0


def test_negative_array_size_raises():
    src = """
channel c: int
process p { $n = 0 - 3; $a = #{ n -> 1 }; out( c, a[0]); }
process q { in( c, $x); print(x); }
"""
    with pytest.raises(ESPRuntimeError, match="negative array size"):
        run_source(src)


def test_match_statement_tag_mismatch_raises():
    src = """
type uT = union of { a: int, b: int }
channel c: int
process p {
    $u: uT = { a |> 5 };
    { b |> $v }: uT = u;
    out( c, v);
    unlink( u);
}
process q { in( c, $x); print(x); }
"""
    with pytest.raises(ESPRuntimeError, match="tag"):
        run_source(src)


def test_overwriting_mutable_slot_unlinks_old_occupant():
    src = """
type dataT = array of int
channel doneC: int
external interface drain(in doneC) { D($v) };
process p {
    $slots = #{ 1 -> 0 };
    skip;
    out( doneC, 1);
    unlink( slots);
}
"""
    # Arrays of ints don't exercise this; use a record holding arrays.
    src = """
type dataT = array of int
type cellT = record of { d: dataT }
channel doneC: int
external interface drain(in doneC) { D($v) };
process p {
    $first: dataT = { 1 -> 10 };
    $second: dataT = { 1 -> 20 };
    $cell: #cellT = #{ first };
    unlink( first);        // the cell now holds the only reference
    cell.d = second;       // must free `first`, link `second`
    out( doneC, cell.d[0]);
    unlink( cell);
    unlink( second);
}
"""
    drain = CollectorReader(["D"])
    machine, _ = run_source(src, {"doneC": drain})
    assert drain.received == [("D", (20,))]
    assert machine.heap.live_count() == 0


def test_cast_of_shared_object_copies():
    src = """
channel doneC: record of { a: int, b: int }
external interface drain(in doneC) { D($a, $b) };
process p {
    $m = #{ 1 -> 5 };
    link( m);              // rc 2: cast cannot reuse in place
    $frozen = cast(m);
    m[0] = 9;
    out( doneC, { m[0], frozen[0] });
    unlink( m);
    unlink( m);
    unlink( frozen);
}
"""
    drain = CollectorReader(["D"])
    machine, _ = run_source(src, {"doneC": drain})
    assert drain.received == [("D", (9, 5))]
    assert machine.heap.live_count() == 0


# -- alt corner cases ---------------------------------------------------------------


def test_alt_out_arm_to_external_reader():
    src = """
channel outC: int
channel inC: int
external interface feed(out inC) { F($v) };
external interface drain(in outC) { D($v) };
process p {
    $n = 0;
    while (n < 3) {
        alt {
            case( out( outC, n * 10)) { n = n + 1; }
            case( in( inC, $x)) { n = x; }
        }
    }
}
"""
    drain = CollectorReader(["D"])
    machine, _ = run_source(src, {"inC": QueueWriter(["F"]), "outC": drain})
    assert [args[0] for _, args in drain.received] == [0, 10, 20]


def test_alt_two_out_arms_different_readers():
    src = """
channel aC: int
channel bC: int
channel outC: record of { who: int, v: int }
external interface drain(in outC) { D($who, $v) };
process chooser {
    $n = 0;
    while (n < 4) {
        alt {
            case( out( aC, n)) { n = n + 1; }
            case( out( bC, n)) { n = n + 1; }
        }
    }
}
process ra { while (true) { in( aC, $x); out( outC, { 0, x }); } }
process rb { while (true) { in( bC, $y); out( outC, { 1, y }); } }
"""
    drain = CollectorReader(["D"])
    machine, _ = run_source(src, {"outC": drain})
    values = sorted(args[1] for _, args in drain.received)
    assert values == [0, 1, 2, 3]


def test_verifier_explores_alt_out_choice():
    src = """
channel aC: int
channel bC: int
process chooser {
    alt {
        case( out( aC, 1)) { skip; }
        case( out( bC, 2)) { skip; }
    }
}
process ra { in( aC, $x); print(x); }
process rb { in( bC, $y); print(y); }
"""
    machine = Machine(compile_source(src))
    result = Explorer(machine, quiescence_ok=True).explore()
    assert result.ok
    # Both arms explored: the initial state plus one distinct successor
    # per arm (ra completed vs rb completed).
    assert result.states == 3
    assert result.transitions == 2


def test_verifier_memory_error_has_trace():
    src = """
type dataT = array of int
channel dC: dataT
channel outC: int
external interface drain(in outC) { D($v) };
process producer { $d: dataT = { 1 -> 0 }; out( dC, d); unlink( d); }
process consumer { in( dC, $x); unlink( x); unlink( x); }
"""
    machine = Machine(compile_source(src), externals={"outC": SinkReader(["D"])})
    result = Explorer(machine).explore()
    assert not result.ok
    violation = result.violations[0]
    assert violation.kind == "memory"
    assert violation.trace  # at least the dC rendezvous appears
