"""Shared plumbing for the ``espc serve`` test battery.

``daemon_process`` runs the real CLI entry point (``espc serve``) in a
subprocess — the same code path users get, including signal handlers
and the shutdown cleanup the leak-check test asserts on.  The daemon's
socket path doubles as a process marker: forked workers (and any
``ParallelExplorer`` children they spawn) inherit the daemon's command
line, so scanning ``/proc`` for the unique socket path finds every
process the daemon is responsible for.

``serial_reference`` computes the ground truth a daemon answer must
match: the same job run to completion in *this* process with fresh
collapse tables and the in-memory store — i.e. what a one-shot
``espc verify`` of the program computes.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import subprocess
import sys
import tempfile
from types import SimpleNamespace

from repro.serve.client import ServeClient, wait_for_server
from repro.serve.keys import JobSpec
from repro.serve.worker import deterministic_body, run_job
from repro.verify.collapse import CollapseTables


@contextlib.contextmanager
def daemon_process(tmp_path, workers: int = 2, cache_dir=None,
                   extra_args=()):
    """A live ``espc serve`` subprocess; yields
    ``SimpleNamespace(socket, proc)`` and guarantees the process is
    gone on exit (graceful shutdown first, SIGKILL as a last resort)."""
    socket_path = os.path.join(str(tmp_path), "serve.sock")
    cmd = [
        sys.executable, "-m", "repro.tools.cli", "serve",
        "--socket", socket_path, "--workers", str(workers),
    ]
    if cache_dir is not None:
        cmd += ["--cache-dir", str(cache_dir)]
    cmd += list(extra_args)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True, env=env)
    try:
        wait_for_server(socket_path, timeout=30)
        yield SimpleNamespace(socket=socket_path, proc=proc)
    finally:
        if proc.poll() is None:
            with contextlib.suppress(Exception):
                with ServeClient(socket_path, timeout=10) as client:
                    client.shutdown()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


def processes_matching(marker: str) -> list[int]:
    """PIDs of live processes whose command line contains ``marker``
    (the daemon, its forked workers, and their fork children all share
    the daemon's command line)."""
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/cmdline", "rb") as f:
                cmdline = f.read()
        except OSError:
            continue
        if marker.encode() in cmdline:
            pids.append(int(entry))
    return pids


def serial_reference(spec: JobSpec) -> dict:
    """The deterministic result this spec must produce, computed by a
    fresh in-process run with the default in-memory store — the serial
    ``espc verify`` ground truth for the differential tests."""
    reference_spec = dataclasses.replace(spec, store="collapse")
    with tempfile.TemporaryDirectory(prefix="esp-serve-ref-") as spool:
        body = run_job(reference_spec, key="reference", attempt=0,
                       spool=spool, tables=CollapseTables())
    return deterministic_body(body)


def canonical_json(body: dict) -> str:
    """Stable bytes for byte-identical comparisons."""
    return json.dumps(body, sort_keys=True)


# Small closed programs with distinct state-space sizes, used as the
# mixed job corpus by the e2e tests and the load benchmark.
def chain_source(messages: int, assert_bound: int | None = None) -> str:
    lines = ["channel c: int", "process producer {"]
    for i in range(messages):
        lines.append(f"    out( c, {i % 3});")
    lines += ["}", "process consumer {", f"    $n = 0;",
              f"    while (n < {messages}) {{",
              "        in( c, $x);"]
    if assert_bound is not None:
        lines.append(f"        assert( x <= {assert_bound});")
    lines += ["        n = n + 1;", "    }", "}"]
    return "\n".join(lines) + "\n"
