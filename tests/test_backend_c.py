"""Tests for the C backend: structural checks plus gcc compile-and-run
integration (the generated firmware must behave like the interpreter)."""

import shutil
import subprocess

import pytest

from repro import compile_source
from repro.backends.c import generate_c

GCC = shutil.which("gcc") or shutil.which("cc")

ADD5 = """
channel inC: int
channel outC: int
external interface feed(out inC) { Feed($v) };
external interface drain(in outC) { Drain($v) };
process add5 { while (true) { in( inC, $i); out( outC, i + 5); } }
"""


def gen(src, **kw):
    return generate_c(compile_source(src), **kw)


# -- structural properties ------------------------------------------------------


def test_generated_code_has_runtime_and_step_functions():
    code = gen(ADD5)
    assert "esp_alloc" in code
    assert "esp_unlink" in code
    assert "static void esp_step_0(void)" in code
    assert "esp_main_loop" in code


def test_context_switch_is_pc_only():
    # The step function's entry dispatch restores only a saved pc.
    code = gen(ADD5)
    assert "switch (self->pc)" in code
    assert "goto R1;" in code


def test_bitmask_blocking_present():
    code = gen(ADD5)
    assert "wait_mask" in code
    assert "esp_chan_bit" in code


def test_extern_interface_functions_declared():
    code = gen(ADD5)
    assert "extern int feedIsReady(void);" in code
    assert "extern void feedFeed(esp_val *a0);" in code
    assert "extern void drainDrain(esp_val a0);" in code


def test_locals_live_in_static_region():
    code = gen(ADD5)
    assert "static struct" in code  # per-process static locals (§4.3)


def test_standalone_main_optional():
    assert "int main(void)" not in gen(ADD5)
    assert "int main(void)" in gen(ADD5, emit_main=True)


def test_fused_channel_stages_components():
    src = """
channel pairC: record of { a: int, b: int }
channel outC: int
external interface drain(in outC) { D($v) };
process p { out( pairC, { 1, 2 }); }
process q { in( pairC, { $a, $b }); out( outC, a + b); }
"""
    code = gen(src)
    assert "self->pending_n = 2;" in code  # components, no record alloc


# -- compile-and-run integration ---------------------------------------------------


def compile_and_run(tmp_path, program_c, harness_c, runs=20):
    (tmp_path / "pgm.c").write_text(program_c)
    (tmp_path / "harness.c").write_text(harness_c)
    binary = tmp_path / "test"
    subprocess.run(
        [GCC, "-O1", "-Wall", "-Wno-unused", "-o", str(binary),
         str(tmp_path / "pgm.c"), str(tmp_path / "harness.c")],
        check=True, capture_output=True, text=True,
    )
    result = subprocess.run([str(binary)], capture_output=True, text=True,
                            timeout=30)
    assert result.returncode == 0, result.stderr
    return result.stdout


HARNESS_TEMPLATE = """
#include <stdio.h>
#include <stdint.h>
typedef intptr_t esp_val;
%s
void esp_init(void);
void esp_run(int max_polls);
int main(void) {
    esp_init();
    for (int i = 0; i < %d; i++) esp_run(-1);
    return 0;
}
"""


@pytest.mark.skipif(GCC is None, reason="no C compiler available")
def test_add5_compiles_and_runs(tmp_path):
    harness = HARNESS_TEMPLATE % (
        """
static int inputs[] = {1, 2, 37};
static int next_input = 0;
int feedIsReady(void) { return next_input < 3 ? 1 : 0; }
void feedFeed(esp_val *a0) { *a0 = inputs[next_input++]; }
int drainIsReady(void) { return 1; }
void drainDrain(esp_val a0) { printf("got %ld\\n", (long)a0); }
""",
        10,
    )
    stdout = compile_and_run(tmp_path, gen(ADD5), harness)
    assert stdout.splitlines() == ["got 6", "got 7", "got 42"]


DISPATCH = """
type sendT = record of { dest: int, size: int }
type userT = union of { send: sendT, update: int }
channel userC: userT
channel sendOutC: int
channel updOutC: int
external interface user(out userC) {
    Send({ send |> { $dest, $size }}),
    Update({ update |> $v })
};
external interface sendDrain(in sendOutC) { S($v) };
external interface updDrain(in updOutC) { U($v) };
process sender { while (true) { in( userC, { send |> { $d, $s }}); out( sendOutC, d + s); } }
process updater { while (true) { in( userC, { update |> $v }); out( updOutC, v * 2); } }
"""


@pytest.mark.skipif(GCC is None, reason="no C compiler available")
def test_union_dispatch_in_c(tmp_path):
    harness = HARNESS_TEMPLATE % (
        """
/* message stream: Update(7), Send(1,2), Update(9) */
static int step = 0;
int userIsReady(void) {
    if (step == 0 || step == 2) return 2;   /* Update is entry #2 */
    if (step == 1) return 1;                /* Send is entry #1 */
    return 0;
}
void userSend(esp_val *dest, esp_val *size) { *dest = 1; *size = 2; step++; }
void userUpdate(esp_val *v) { *v = (step == 0) ? 7 : 9; step++; }
int sendDrainIsReady(void) { return 1; }
void sendDrainS(esp_val v) { printf("S %ld\\n", (long)v); }
int updDrainIsReady(void) { return 1; }
void updDrainU(esp_val v) { printf("U %ld\\n", (long)v); }
""",
        20,
    )
    stdout = compile_and_run(tmp_path, gen(DISPATCH), harness)
    lines = stdout.splitlines()
    # Cross-stream interleaving is scheduling-dependent; per-stream
    # order and the full multiset are not.
    assert sorted(lines) == ["S 3", "U 14", "U 18"]
    assert lines.index("U 14") < lines.index("U 18")


FIFO = """
const N = 4;
channel inC: int
channel outC: int
external interface feed(out inC) { F($v) };
external interface drain(in outC) { D($v) };
process fifo {
    $q: #array of int = #{ N -> 0 };
    $hd = 0; $tl = 0; $count = 0;
    while {
        alt {
            case( count < N, in( inC, q[tl % N])) { tl = tl + 1; count = count + 1; }
            case( count > 0, out( outC, q[hd % N])) { hd = hd + 1; count = count - 1; }
        }
    }
}
"""


@pytest.mark.skipif(GCC is None, reason="no C compiler available")
def test_fifo_alt_in_c(tmp_path):
    harness = HARNESS_TEMPLATE % (
        """
static int fed = 0;
int feedIsReady(void) { return fed < 10 ? 1 : 0; }
void feedF(esp_val *v) { *v = fed++; }
int drainIsReady(void) { return 1; }
void drainD(esp_val v) { printf("%ld\\n", (long)v); }
""",
        60,
    )
    stdout = compile_and_run(tmp_path, gen(FIFO), harness)
    assert [int(x) for x in stdout.split()] == list(range(10))


REFCOUNT = """
type dataT = array of int
channel dataC: dataT
channel doneC: int
external interface drain(in doneC) { D($v) };
process producer {
    $i = 0;
    while (i < 50) {
        $d: dataT = { 8 -> i };
        out( dataC, d);
        unlink( d);
        i = i + 1;
    }
    out( doneC, i);
}
process consumer { while (true) { in( dataC, $x); unlink( x); } }
"""


@pytest.mark.skipif(GCC is None, reason="no C compiler available")
def test_refcounts_balance_in_c(tmp_path):
    # esp_live_objects must come back to zero after the run; we print
    # it from the harness by linking against the generated globals.
    harness = HARNESS_TEMPLATE % (
        """
int drainIsReady(void) { return 1; }
static long done_value = -1;
void drainD(esp_val v) { done_value = v; }
extern long esp_live_objects_probe(void);
""",
        60,
    )
    harness = harness.replace(
        "return 0;",
        'printf("done %ld live %ld\\n", done_value, esp_live_objects_probe());\n'
        "    return 0;",
    )
    program = gen(REFCOUNT) + (
        "\nlong esp_live_objects_probe(void) { return esp_live_objects; }\n"
    )
    stdout = compile_and_run(tmp_path, program, harness)
    assert stdout.strip() == "done 50 live 0"


@pytest.mark.skipif(GCC is None, reason="no C compiler available")
def test_pid_reply_routing_in_c(tmp_path):
    src = """
channel reqC: record of { ret: int, v: int }
channel repC: record of { ret: int, v: int }
channel outC: record of { who: int, v: int }
external interface drain(in outC) { D($who, $v) };
process server { while (true) { in( reqC, { $ret, $v }); out( repC, { ret, v * 10 }); } }
process a { out( reqC, { @, 1 }); in( repC, { @, $r }); out( outC, { @, r }); }
process b { out( reqC, { @, 2 }); in( repC, { @, $r }); out( outC, { @, r }); }
"""
    harness = HARNESS_TEMPLATE % (
        """
int drainIsReady(void) { return 1; }
void drainD(esp_val who, esp_val v) { printf("%ld:%ld\\n", (long)who, (long)v); }
""",
        40,
    )
    stdout = compile_and_run(tmp_path, gen(src), harness)
    got = sorted(stdout.split())
    assert got == sorted(["1:10", "2:20"])


@pytest.mark.skipif(GCC is None, reason="no C compiler available")
def test_vmmc_firmware_compiles_as_c(tmp_path):
    # The whole VMMC ESP firmware must generate valid C (the host-side
    # interface functions stay extern, so compile to an object file).
    from repro.vmmc.firmware_esp import compile_vmmc_esp

    code = generate_c(compile_vmmc_esp())
    path = tmp_path / "vmmc.c"
    path.write_text(code)
    subprocess.run(
        [GCC, "-O1", "-Wall", "-Wno-unused", "-c", str(path),
         "-o", str(tmp_path / "vmmc.o")],
        check=True, capture_output=True, text=True,
    )
    assert (tmp_path / "vmmc.o").exists()


def test_vmmc_firmware_emits_promela():
    from repro.backends.spin import generate_promela
    from repro.lang.program import frontend
    from repro.vmmc.firmware_esp import VMMC_ESP_SOURCE

    spec = generate_promela(frontend(VMMC_ESP_SOURCE))
    for process in ("pageTable", "sm1", "sender", "receiver"):
        assert f"active proctype {process}()" in spec
    assert "chan netInC = [0] of" in spec


@pytest.mark.skipif(GCC is None, reason="no C compiler available")
def test_nested_alt_retransmission_compiles(tmp_path):
    # The retransmission harness nests an alt inside an alt case body —
    # the deepest control-flow shape the paper's programs use.
    from repro.vmmc.retransmission import protocol_source

    code = generate_c(compile_source(protocol_source()))
    path = tmp_path / "retrans.c"
    path.write_text(code)
    subprocess.run(
        [GCC, "-O1", "-Wall", "-Wno-unused", "-c", str(path),
         "-o", str(tmp_path / "retrans.o")],
        check=True, capture_output=True, text=True,
    )
