"""Unit and integration tests for the ESP runtime (heap, interpreter,
scheduler, external bridges)."""

import pytest

from repro import (
    CollectorReader,
    Machine,
    OptLevel,
    QueueWriter,
    Scheduler,
    compile_source,
)
from repro.api import compile_source_with_stats
from repro.errors import AssertionFailure, ESPRuntimeError, MemorySafetyError
from repro.runtime.interp import Status


def run_source(src, externals=None, policy="stack", max_objects=None, **kw):
    prog = compile_source(src, **kw)
    machine = Machine(prog, externals=externals or {}, max_objects=max_objects)
    result = Scheduler(machine, policy=policy).run()
    return machine, result


# -- basic execution -----------------------------------------------------------


def test_two_process_pipeline():
    src = """
channel c: int
channel outC: int
external interface drain(in outC) { D($v) };
process producer { $i = 0; while (i < 5) { out( c, i * i); i = i + 1; } }
process consumer { while (true) { in( c, $x); out( outC, x); } }
"""
    drain = CollectorReader(["D"])
    machine, result = run_source(src, {"outC": drain})
    assert [args[0] for _, args in drain.received] == [0, 1, 4, 9, 16]
    assert machine.processes[0].status is Status.DONE


def test_print_collects_output():
    src = "channel c: int process p { print(1 + 2, true); } process q { in( c, $x); print(x); }"
    machine, result = run_source(src)
    assert ("p", [3, True]) in machine.prints


def test_if_else_and_while():
    src = """
channel outC: int
external interface drain(in outC) { D($v) };
process p {
    $total = 0;
    $i = 0;
    while (i < 10) {
        if (i % 2 == 0) { total = total + i; } else { skip; }
        i = i + 1;
    }
    out( outC, total);
}
"""
    drain = CollectorReader(["D"])
    machine, _ = run_source(src, {"outC": drain})
    assert drain.received == [("D", (20,))]


def test_break_exits_loop():
    src = """
channel outC: int
external interface drain(in outC) { D($v) };
process p {
    $i = 0;
    while (true) { if (i == 3) { break; } i = i + 1; }
    out( outC, i);
}
"""
    drain = CollectorReader(["D"])
    run_source(src, {"outC": drain})
    assert drain.received == [("D", (3,))]


def test_division_by_zero_raises():
    src = "channel c: int process p { $x = 0; print(1 / x); } process q { in( c, $y); print(y); }"
    with pytest.raises(ESPRuntimeError, match="division by zero"):
        run_source(src)


def test_array_out_of_bounds_raises():
    src = "channel c: int process p { $a = #{ 2 -> 0 }; print(a[5]); } process q { in( c, $x); print(x); }"
    with pytest.raises(ESPRuntimeError, match="out of bounds"):
        run_source(src)


def test_assert_failure_raises():
    src = "channel c: int process p { assert(1 > 2); } process q { in( c, $x); print(x); }"
    with pytest.raises(AssertionFailure):
        run_source(src)


# -- pattern dispatch ----------------------------------------------------------


DISPATCH_SRC = """
type sendT = record of { dest: int, size: int }
type userT = union of { send: sendT, update: int }
channel userC: userT
channel sendOutC: int
channel updOutC: int
external interface user(out userC) {
    Send({ send |> { $dest, $size }}),
    Update({ update |> $v })
};
external interface sendDrain(in sendOutC) { S($v) };
external interface updDrain(in updOutC) { U($v) };
process sender { while (true) { in( userC, { send |> { $d, $s }}); out( sendOutC, d + s); } }
process updater { while (true) { in( userC, { update |> $v }); out( updOutC, v); } }
"""


def test_union_dispatch_routes_to_correct_process():
    user = QueueWriter(["Send", "Update"])
    s, u = CollectorReader(["S"]), CollectorReader(["U"])
    user.post("Update", 7)
    user.post("Send", 1, 2)
    user.post("Update", 9)
    run_source(DISPATCH_SRC, {"userC": user, "sendOutC": s, "updOutC": u})
    assert s.received == [("S", (3,))]
    assert u.received == [("U", (7,)), ("U", (9,))]


def test_pid_reply_routing():
    src = """
channel reqC: record of { ret: int, v: int }
channel repC: record of { ret: int, v: int }
channel outC: record of { who: int, v: int }
external interface drain(in outC) { D($who, $v) };
process server { while (true) { in( reqC, { $ret, $v }); out( repC, { ret, v * 10 }); } }
process a { out( reqC, { @, 1 }); in( repC, { @, $r }); out( outC, { @, r }); }
process b { out( reqC, { @, 2 }); in( repC, { @, $r }); out( outC, { @, r }); }
"""
    drain = CollectorReader(["D"])
    machine, _ = run_source(src, {"outC": drain}, policy="random")
    got = {args for _, args in drain.received}
    a_pid = machine.program.process("a").pid
    b_pid = machine.program.process("b").pid
    assert got == {(a_pid, 10), (b_pid, 20)}


def test_unmatched_message_raises():
    src = """
channel c: record of { tag: int, v: int }
process p { out( c, { 99, 1 }); }
process q { in( c, { 0, $v }); print(v); }
"""
    with pytest.raises(ESPRuntimeError, match="matches no receive pattern"):
        run_source(src)


# -- alt ------------------------------------------------------------------------


def test_fifo_queue_with_alt():
    src = """
const N = 4;
channel inC: int
channel outC: int
external interface feed(out inC) { F($v) };
external interface drain(in outC) { D($v) };
process fifo {
    $q: #array of int = #{ N -> 0 };
    $hd = 0; $tl = 0; $count = 0;
    while {
        alt {
            case( count < N, in( inC, q[tl % N])) { tl = tl + 1; count = count + 1; }
            case( count > 0, out( outC, q[hd % N])) { hd = hd + 1; count = count - 1; }
        }
    }
}
"""
    feed = QueueWriter(["F"])
    drain = CollectorReader(["D"])
    for v in range(10):
        feed.post("F", v)
    run_source(src, {"inC": feed, "outC": drain})
    assert [args[0] for _, args in drain.received] == list(range(10))


def test_alt_guard_false_branch_disabled():
    src = """
channel aC: int
channel bC: int
channel outC: int
external interface feedA(out aC) { A($v) };
external interface feedB(out bC) { B($v) };
external interface drain(in outC) { D($v) };
process p {
    $enabled = false;
    while (true) {
        alt {
            case( enabled, in( aC, $x)) { out( outC, x); }
            case( in( bC, $y)) { out( outC, y + 100); enabled = true; }
        }
    }
}
"""
    fa, fb = QueueWriter(["A"]), QueueWriter(["B"])
    drain = CollectorReader(["D"])
    fa.post("A", 1)
    fb.post("B", 2)
    machine, _ = run_source(src, {"aC": fa, "bC": fb, "outC": drain})
    # B must be consumed first (A guard is false); then A is enabled.
    assert [args[0] for _, args in drain.received] == [102, 1]


def test_alt_all_guards_false_raises():
    src = """
channel aC: int
process p { alt { case( false, in( aC, $x)) { print(x); } } }
process q { out( aC, 1); }
"""
    with pytest.raises(ESPRuntimeError, match="every guard false"):
        run_source(src)


# -- memory management -------------------------------------------------------------


MEM_PRELUDE = """
type dataT = array of int
channel dataC: dataT
channel doneC: int
external interface drain(in doneC) { D($v) };
"""


def test_message_passing_refcounts_balance():
    src = MEM_PRELUDE + """
process producer {
    $d: dataT = { 4 -> 7 };
    out( dataC, d);
    unlink( d);
    out( doneC, 1);
}
process consumer { in( dataC, $x); unlink( x); out( doneC, 2); }
"""
    machine, _ = run_source(src, {"doneC": CollectorReader(["D"])})
    assert machine.heap.live_count() == 0


def test_double_free_detected_at_runtime():
    src = MEM_PRELUDE + """
process producer { $d: dataT = { 4 -> 7 }; unlink( d); unlink( d); }
process consumer { in( dataC, $x); unlink( x); }
"""
    with pytest.raises(MemorySafetyError, match="double free|use after free"):
        run_source(src, {"doneC": CollectorReader(["D"])})


def test_use_after_free_detected():
    src = MEM_PRELUDE + """
process producer { $d: dataT = { 4 -> 7 }; unlink( d); print(d[0]); }
process consumer { in( dataC, $x); unlink( x); }
"""
    with pytest.raises(MemorySafetyError, match="use after free"):
        run_source(src, {"doneC": CollectorReader(["D"])})


def test_link_keeps_object_alive():
    src = MEM_PRELUDE + """
process producer {
    $d: dataT = { 4 -> 7 };
    link( d);
    unlink( d);
    out( doneC, d[0]);
    unlink( d);
}
process consumer { in( dataC, $x); unlink( x); }
"""
    drain = CollectorReader(["D"])
    machine, _ = run_source(src, {"doneC": drain})
    assert drain.received == [("D", (7,))]
    assert machine.heap.live_count() == 0


def test_bounded_object_table_flags_leaks():
    src = MEM_PRELUDE + """
process producer {
    $i = 0;
    $total = 0;
    while (i < 100) { $d: dataT = { 2 -> 0 }; total = total + d[0]; i = i + 1; }
    out( doneC, total);
}
process consumer { in( dataC, $x); unlink( x); }
"""
    with pytest.raises(MemorySafetyError, match="object table exhausted"):
        run_source(src, {"doneC": CollectorReader(["D"])}, max_objects=8)


def test_dead_allocation_is_optimized_away_not_leaked():
    # The same leaking loop, but the allocation is dead: DCE removes it
    # (§6.1), so the bounded object table never trips.
    src = MEM_PRELUDE + """
process producer {
    $i = 0;
    while (i < 100) { $d: dataT = { 2 -> 0 }; i = i + 1; }
    out( doneC, i);
}
process consumer { in( dataC, $x); unlink( x); }
"""
    machine, _ = run_source(src, {"doneC": CollectorReader(["D"])}, max_objects=8)
    assert machine.heap.live_count() == 0


def test_nested_structure_recursive_free():
    src = """
type dataT = array of int
type wrapT = record of { id: int, data: dataT }
channel wrapC: wrapT
channel doneC: int
external interface drain(in doneC) { D($v) };
process producer {
    out( wrapC, { 1, { 3 -> 9 } });
    out( doneC, 0);
}
process consumer { in( wrapC, { $id, $d }); out( doneC, d[0] + id); unlink( d); }
"""
    drain = CollectorReader(["D"])
    machine, _ = run_source(src, {"doneC": drain})
    assert ("D", (10,)) in drain.received
    assert machine.heap.live_count() == 0


def test_cast_produces_independent_copy():
    src = """
channel doneC: record of { a: int, b: int }
external interface drain(in doneC) { D($a, $b) };
process p {
    $m = #{ 2 -> 5 };
    $frozen = cast(m);
    m[0] = 99;
    out( doneC, { m[0], frozen[0] });
    unlink( m); unlink( frozen);
}
"""
    drain = CollectorReader(["D"])
    machine, _ = run_source(src, {"doneC": drain})
    assert drain.received == [("D", (99, 5))]
    assert machine.heap.live_count() == 0


def test_mutable_array_shared_alias_semantics():
    src = """
channel doneC: record of { a: int, b: int }
external interface drain(in doneC) { D($a, $b) };
process p {
    $a1 = #{ 4 -> 0 };
    $a2 = a1;
    a2[3] = 7;
    out( doneC, { a1[3], a2[3] });
    unlink( a1);
}
"""
    drain = CollectorReader(["D"])
    machine, _ = run_source(src, {"doneC": drain})
    assert drain.received == [("D", (7, 7))]
    assert machine.heap.live_count() == 0


def test_match_statement_destructure_paper_example():
    src = """
type sendT = record of { dest: int, vAddr: int, size: int }
type userT = union of { send: sendT, update: int }
channel doneC: record of { a: int, b: int, c: int }
external interface drain(in doneC) { D($a, $b, $c) };
process p {
    $sr: sendT = { 7, 54677, 1024 };
    $ur1: userT = { send |> sr };
    $ur2: userT = { send |> { 5, 10000, 512 } };
    { send |> { $dest, $vAddr, $size }}: userT = ur2;
    out( doneC, { dest, vAddr, size });
    unlink( ur1);
    unlink( ur2);
    unlink( sr);
}
"""
    drain = CollectorReader(["D"])
    machine, _ = run_source(src, {"doneC": drain})
    assert drain.received == [("D", (5, 10000, 512))]
    # unlink(ur1) drops sr's embedding reference; unlink(sr) drops the
    # allocation reference — everything reclaimed.
    assert machine.heap.live_count() == 0


# -- scheduling policies ------------------------------------------------------------


@pytest.mark.parametrize("policy", ["stack", "fifo", "random"])
def test_all_policies_produce_same_multiset(policy):
    src = """
channel c: int
channel outC: int
external interface drain(in outC) { D($v) };
process p1 { out( c, 1); out( c, 2); }
process p2 { out( c, 3); }
process consumer { while (true) { in( c, $x); out( outC, x); } }
"""
    drain = CollectorReader(["D"])
    run_source(src, {"outC": drain}, policy=policy)
    assert sorted(args[0] for _, args in drain.received) == [1, 2, 3]


def test_context_switch_counting():
    src = "channel c: int process p { out( c, 1); } process q { in( c, $x); print(x); }"
    machine, _ = run_source(src)
    assert machine.counters.context_switches >= 2
    assert machine.counters.transfers == 1


def test_scheduler_limit_stops_early():
    src = """
channel ping: int
channel pong: int
process a { $i = 0; while (true) { out( ping, i); in( pong, $x); i = x; } }
process b { while (true) { in( ping, $y); out( pong, y + 1); } }
"""
    prog = compile_source(src)
    machine = Machine(prog)
    result = Scheduler(machine).run(max_transfers=10)
    assert result.reason == "limit"
    assert result.transfers == 10


# -- optimization levels produce identical behaviour ----------------------------------


def test_opt_levels_agree():
    src = DISPATCH_SRC
    results = []
    for level in (OptLevel.NONE, OptLevel.FULL):
        user = QueueWriter(["Send", "Update"])
        s, u = CollectorReader(["S"]), CollectorReader(["U"])
        user.post("Send", 4, 6)
        user.post("Update", 5)
        prog = compile_source(src, opt_level=level)
        machine = Machine(prog, externals={"userC": user, "sendOutC": s, "updOutC": u})
        Scheduler(machine).run()
        results.append((s.received, u.received))
    assert results[0] == results[1]


def test_optimizer_reports_stats():
    src = """
const K = 10;
channel outC: int
external interface drain(in outC) { D($v) };
process p {
    $a = K * 2;
    $b = a;
    $unused = 123;
    out( outC, b + 1);
}
"""
    prog, stats, _front = compile_source_with_stats(src)
    assert stats.folds >= 1
    assert stats.copies_propagated >= 1
    assert stats.dead_removed >= 1


def test_stack_policy_prevents_starvation():
    # Two producers compete for one consumer forever; §4.2 requires the
    # selection to prevent starvation, so both streams must progress.
    src = """
channel c: int
channel outC: int
external interface drain(in outC) { D($v) };
process fast { $i = 0; while (i < 40) { out( c, 1); i = i + 1; } }
process slow { $j = 0; while (j < 5) { out( c, 2); j = j + 1; } }
process consumer { while (true) { in( c, $x); out( outC, x); } }
"""
    drain = CollectorReader(["D"])
    machine, result = run_source(src, {"outC": drain}, policy="stack")
    values = [args[0] for _, args in drain.received]
    assert values.count(2) == 5  # the slow producer was fully served
    # ... and it did not have to wait for the fast one to finish.
    first_slow = values.index(2)
    assert first_slow < values.count(1)
