"""Tests for counterexample formatting, violation grouping, and
deterministic trace replay."""

import pytest

from repro import compile_source
from repro.runtime.machine import Machine
from repro.verify import (
    Explorer,
    ReplayError,
    format_trace,
    replay_path,
    replay_violation,
    report,
    shortest,
)
from repro.verify.properties import Violation
from repro.vmmc.retransmission import buggy_source, build_machine


def make(kind, message, steps):
    return Violation(kind, message, [f"step-{i}" for i in range(steps)], steps)


def test_format_trace_numbers_steps():
    v = make("assertion", "x exploded", 3)
    text = format_trace(v)
    assert "assertion — x exploded" in text
    assert "step   1: step-0" in text
    assert "=> x exploded" in text


def test_format_trace_empty():
    v = Violation("deadlock", "stuck", [])
    text = format_trace(v)
    assert "deadlock — stuck" in text


def test_shortest_picks_minimal_trace():
    violations = [make("memory", "long", 9), make("memory", "short", 2),
                  make("assertion", "mid", 5)]
    assert shortest(violations).message == "short"
    assert shortest([]) is None


def test_report_groups_by_kind():
    violations = [make("memory", "a", 1), make("memory", "b", 2),
                  make("deadlock", "c", 3)]
    text = report(violations)
    assert "3 violation(s)" in text
    assert "memory: 2" in text
    assert "deadlock: 1" in text
    assert "shortest counterexample" in text


def test_report_no_violations():
    assert report([]) == "no violations found"


def test_violation_str_includes_trace():
    v = make("runtime", "boom", 2)
    text = str(v)
    assert "[runtime] boom" in text
    assert "1. step-0" in text


# -- deterministic replay ------------------------------------------------------


ASSERT_FAIL = """
channel c: int

process prod {
    out( c, 1);
    out( c, 2);
}

process cons {
    in( c, $x);
    in( c, $y);
    assert( y == 3);
}
"""

DEADLOCK = """
channel c: int

process prod {
    out( c, 1);
}

process cons {
    in( c, $x);
    in( c, $y);
}
"""


def test_replay_reproduces_explorer_violation():
    # The regression guarantee: a violation found by exploration can be
    # replayed through a *fresh* machine and comes back identical.
    found = Explorer(Machine(compile_source(ASSERT_FAIL))).explore()
    assert not found.ok
    original = found.violations[0]
    replayed = replay_violation(Machine(compile_source(ASSERT_FAIL)), original)
    assert replayed.kind == original.kind
    assert replayed.message == original.message
    assert replayed.trace == original.trace
    assert replayed.depth == original.depth


def test_replay_reproduces_retransmission_bug():
    source = buggy_source("duplicate_delivery", window=1, messages=2)
    found = Explorer(build_machine(source)).explore()
    assert not found.ok
    original = found.violations[0]
    replayed = replay_violation(build_machine(source), original)
    assert (replayed.kind, replayed.message, replayed.trace, replayed.depth) \
        == (original.kind, original.message, original.trace, original.depth)


def test_replay_reproduces_deadlock():
    found = Explorer(Machine(compile_source(DEADLOCK)),
                     quiescence_ok=False).explore()
    assert not found.ok
    original = found.violations[0]
    assert original.kind == "deadlock"
    replayed = replay_violation(Machine(compile_source(DEADLOCK)), original,
                                quiescence_ok=False)
    assert replayed.kind == "deadlock"
    assert replayed.trace == original.trace


def test_replay_path_returns_descriptions_and_error():
    machine = Machine(compile_source(ASSERT_FAIL))
    trace, err = replay_path(machine, [0, 0])
    assert len(trace) == 2
    assert all("prod -> cons on c" in step for step in trace)
    assert err is not None  # the assertion fires on the second delivery


def test_replay_path_rejects_bad_index():
    machine = Machine(compile_source(DEADLOCK))
    with pytest.raises(ReplayError):
        replay_path(machine, [5])


def test_replay_violation_rejects_stale_trace():
    stale = Violation("assertion", "old", ["nobody -> nothing on ghostC"], 1)
    with pytest.raises(ReplayError):
        replay_violation(Machine(compile_source(ASSERT_FAIL)), stale)


def test_replay_violation_rejects_clean_trace():
    # A prefix that violates nothing must not silently "succeed".
    found = Explorer(Machine(compile_source(ASSERT_FAIL))).explore()
    partial = Violation("assertion", "partial",
                        found.violations[0].trace[:1], 1)
    with pytest.raises(ReplayError):
        replay_violation(Machine(compile_source(ASSERT_FAIL)), partial)


# A consumer that deadlocks *inside an alt*: after draining the one
# message, both arms wait on channels nobody will ever send on.
ALT_DEADLOCK = """\
channel a: int
channel b: int

process prod {
    out( a, 1);
}

process cons {
    in( a, $x);
    alt {
        case( in( a, $y)) { skip; }
        case( in( b, $z)) { skip; }
    }
}
"""


def test_deadlock_report_points_at_alt_arms():
    # The deadlock message must carry the source coordinates of the
    # alt *arms* the process is waiting on (ir.AltArm.span), not just
    # the process name — and replay must reproduce the same rendering.
    found = Explorer(Machine(compile_source(ALT_DEADLOCK, "alt_dead.esp")),
                     quiescence_ok=False).explore()
    assert not found.ok
    original = found.violations[0]
    assert original.kind == "deadlock"
    # case( in( a, ...)) is on line 11, case( in( b, ...)) on line 12.
    assert "cons at alt_dead.esp:11" in original.message
    assert "alt_dead.esp:12" in original.message
    replayed = replay_violation(
        Machine(compile_source(ALT_DEADLOCK, "alt_dead.esp")), original,
        quiescence_ok=False)
    assert replayed.message == original.message
    text = format_trace(replayed)
    assert "alt_dead.esp:11" in text


def test_deadlock_report_points_at_blocking_in():
    # A plain ``in`` block reports the instruction's own span.
    source = "channel a: int\n\nprocess lone {\n    in( a, $x);\n}\n"
    found = Explorer(Machine(compile_source(source, "lone.esp")),
                     quiescence_ok=False).explore()
    assert not found.ok
    assert "lone at lone.esp:4" in found.violations[0].message


def test_cloned_alt_arms_keep_spans():
    # clone_tree shares spans; IR lowered from a clone must still carry
    # per-arm source coordinates (the memsafety isolation path).
    from repro.ir.pipeline import compile_ir
    from repro.lang.astclone import clone_tree
    from repro.lang.program import frontend

    front = frontend(ALT_DEADLOCK, "alt_dead.esp")
    for info in front.checked.processes:
        info.decl.body = clone_tree(info.decl.body)
    program, _stats = compile_ir(front)
    cons = next(p for p in program.processes if p.name == "cons")
    arms = next(i for i in cons.instrs if i.__class__.__name__ == "Alt").arms
    assert [str(arm.span) for arm in arms] == \
        ["alt_dead.esp:11:9", "alt_dead.esp:12:9"]
