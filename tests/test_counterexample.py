"""Tests for counterexample formatting and violation grouping."""

from repro.verify import format_trace, report, shortest
from repro.verify.properties import Violation


def make(kind, message, steps):
    return Violation(kind, message, [f"step-{i}" for i in range(steps)], steps)


def test_format_trace_numbers_steps():
    v = make("assertion", "x exploded", 3)
    text = format_trace(v)
    assert "assertion — x exploded" in text
    assert "step   1: step-0" in text
    assert "=> x exploded" in text


def test_format_trace_empty():
    v = Violation("deadlock", "stuck", [])
    text = format_trace(v)
    assert "deadlock — stuck" in text


def test_shortest_picks_minimal_trace():
    violations = [make("memory", "long", 9), make("memory", "short", 2),
                  make("assertion", "mid", 5)]
    assert shortest(violations).message == "short"
    assert shortest([]) is None


def test_report_groups_by_kind():
    violations = [make("memory", "a", 1), make("memory", "b", 2),
                  make("deadlock", "c", 3)]
    text = report(violations)
    assert "3 violation(s)" in text
    assert "memory: 2" in text
    assert "deadlock: 1" in text
    assert "shortest counterexample" in text


def test_report_no_violations():
    assert report([]) == "no violations found"


def test_violation_str_includes_trace():
    v = make("runtime", "boom", 2)
    text = str(v)
    assert "[runtime] boom" in text
    assert "1. step-0" in text
